"""Surrogate-guided candidate selection for the canvas designer.

A :class:`SurrogateGuide` sits *in front of* the physics oracle in
:func:`repro.gatelib.designer.search_canvas_design`: per search
iteration it featurizes a small batch of proposed canvas mutations,
re-ranks them by the surrogate's predicted operability, prunes the
batch entirely when no proposal clears the probability threshold, and
hands at most one survivor to ``score_design`` for the real
ground-state evaluation.

Safety contract (the reason the guide can never ship a wrong gate):

* the guide only decides *which* candidates receive physics -- every
  accepted design, and in particular the search winner, carries a
  score computed by the exact ground-state oracle, never a prediction;
* :func:`~repro.sidb.operational.check_operational` -- the function
  whose verdict decides whether a gate ships -- never consults the
  guide at all; with the guide enabled it contributes training
  examples and telemetry, nothing else.

Enabling the guide may therefore change *runtime* (fewer physics
evaluations) and the *search trajectory*, but never the operational
verdict of a validated gate: the library-sweep verdict-equality gate
in ``benchmarks/bench_learn.py`` checks exactly this.

Telemetry: ``learn.candidates_scored`` / ``learn.candidates_pruned``
counters and the surrogate hit-rate (``learn.surrogate_hits`` /
``learn.surrogate_misses``, a hit being a >=0.5 prediction matching
the physics outcome on an evaluated candidate).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import obs
from repro.learn.dataset import default_learn_dir
from repro.learn.features import CandidateGeometry, featurize_candidate
from repro.learn.model import SurrogateModel

#: Default admission threshold: proposals below this predicted
#: operability are pruned without physics.
DEFAULT_THRESHOLD = 0.2

#: Default number of mutation proposals ranked per search iteration.
DEFAULT_BATCH = 8

#: After this many *consecutive* pruned batches the next batch's best
#: proposal is admitted regardless of threshold.  Bounds how long the
#: guide can starve the search of physics: on problems where the
#: surrogate is uniformly pessimistic (e.g. a function the template
#: cannot realize) the search still evaluates its top-ranked proposal
#: once per ``patience + 1`` iterations instead of stalling.
DEFAULT_PATIENCE = 3

#: Adaptive admission: the batch best must also clear this quantile of
#: the recently scored probabilities.  Absolute probabilities shift
#: wildly between problems (a template that is nearly a gate sits near
#: 0.5, a hopeless one near 0.05), so a fixed threshold either prunes
#: nothing or everything; ranking against the trajectory's own recent
#: proposals keeps physics reserved for the top slice either way.
DEFAULT_ADMIT_QUANTILE = 0.9

#: Rolling window of scored probabilities behind the adaptive quantile.
HISTORY_WINDOW = 512

#: Scored probabilities needed before the adaptive quantile engages.
HISTORY_MIN = 16


def default_model_path() -> Path:
    """Where ``repro learn train`` writes and the CLI looks by default."""
    return default_learn_dir() / "model.json"


class SurrogateGuide:
    """Re-ranks and prunes designer candidates ahead of physics."""

    def __init__(
        self,
        model: SurrogateModel,
        threshold: float = DEFAULT_THRESHOLD,
        batch: int = DEFAULT_BATCH,
        patience: int = DEFAULT_PATIENCE,
        admit_quantile: float = DEFAULT_ADMIT_QUANTILE,
    ) -> None:
        self.model = model
        self.threshold = float(threshold)
        self.batch = max(1, int(batch))
        self.patience = max(0, int(patience))
        self.admit_quantile = min(max(float(admit_quantile), 0.0), 1.0)
        self.scored = 0
        self.pruned = 0
        self.evaluated = 0
        self.hits = 0
        self.misses = 0
        self._consecutive_pruned = 0
        self._history: list[float] = []

    @classmethod
    def load(
        cls,
        path: str | Path | None = None,
        threshold: float = DEFAULT_THRESHOLD,
        batch: int = DEFAULT_BATCH,
        patience: int = DEFAULT_PATIENCE,
        admit_quantile: float = DEFAULT_ADMIT_QUANTILE,
    ) -> "SurrogateGuide":
        """A guide from a serialized model (default: the learn dir's)."""
        return cls(
            SurrogateModel.load(path or default_model_path()),
            threshold=threshold,
            batch=batch,
            patience=patience,
            admit_quantile=admit_quantile,
        )

    # --- ranking -------------------------------------------------------
    def probabilities(self, problem, canvases) -> np.ndarray:
        """Predicted operability of each proposed canvas."""
        vectors = np.stack(
            [
                featurize_candidate(
                    CandidateGeometry.from_canvas_problem(problem, canvas),
                    parameters=problem.parameters,
                )
                for canvas in canvases
            ]
        )
        self.scored += len(canvases)
        obs.add("learn.candidates_scored", len(canvases))
        return self.model.predict_proba(vectors)

    def select(self, problem, canvases) -> tuple[int, float] | None:
        """Index + probability of the best admissible proposal.

        ``None`` when every proposal falls below the admission bar --
        the fixed ``threshold`` or, once enough probabilities have been
        scored, the ``admit_quantile`` of the recent-history window,
        whichever is higher -- and the whole batch is pruned; unless
        ``patience`` consecutive batches have already been pruned, in
        which case the batch's best proposal is admitted anyway.  Non-selected proposals count
        as pruned either way -- they never reach physics.
        """
        if not canvases:
            return None
        probabilities = self.probabilities(problem, canvases)
        best = int(np.argmax(probabilities))
        probability = float(probabilities[best])
        admit_at = self.threshold
        if len(self._history) >= HISTORY_MIN:
            admit_at = max(
                admit_at,
                float(np.quantile(self._history, self.admit_quantile)),
            )
        self._history.extend(float(p) for p in probabilities)
        del self._history[:-HISTORY_WINDOW]
        if (
            probability < admit_at
            and self._consecutive_pruned < self.patience
        ):
            self._consecutive_pruned += 1
            self.pruned += len(canvases)
            obs.add("learn.candidates_pruned", len(canvases))
            return None
        self._consecutive_pruned = 0
        pruned = len(canvases) - 1
        if pruned:
            self.pruned += pruned
            obs.add("learn.candidates_pruned", pruned)
        return best, probability

    # --- telemetry -----------------------------------------------------
    def observe(self, probability: float, operational: bool) -> None:
        """Record a physics outcome against the surrogate's prediction."""
        self.evaluated += 1
        if (probability >= 0.5) == bool(operational):
            self.hits += 1
            obs.add("learn.surrogate_hits")
        else:
            self.misses += 1
            obs.add("learn.surrogate_misses")

    @property
    def hit_rate(self) -> float:
        """Fraction of evaluated candidates the surrogate called right."""
        if not self.evaluated:
            return float("nan")
        return self.hits / self.evaluated

    def stats(self) -> dict:
        return {
            "scored": self.scored,
            "pruned": self.pruned,
            "evaluated": self.evaluated,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "threshold": self.threshold,
            "batch": self.batch,
            "patience": self.patience,
            "admit_quantile": self.admit_quantile,
        }
