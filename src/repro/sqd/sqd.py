"""SiQAD ``.sqd`` design-file writer and reader.

The paper's flow ends by "generat[ing] a design file from the SiDB layout
for physical simulation and/or fabrication" (step 8); SiQAD's XML format
is the interchange format of the SiDB community.  We emit the ``DB``
layer with both lattice coordinates (``latcoord n m l``) and physical
locations in angstroms (``physloc``), which SiQAD and fiction can read.

Surface defects ride along in a dedicated ``Defects`` layer (one
``<defect>`` per record with its lattice coordinate, type and charge),
mirroring how SiQAD annotates fabrication imperfections; pristine
layouts serialize byte-identically to the defect-free writer.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.coords.lattice import LatticeSite
from repro.defects.model import DefectType, SidbDefect, SurfaceDefects
from repro.sidb.charge import SidbLayout

_PROGRAM_NAME = "repro-bestagon"
_PROGRAM_VERSION = "1.0.0"

#: Version of the ``.sqd`` serialization itself.  Part of the design-
#: service cache digest: bump it whenever :func:`write_sqd` changes its
#: output bytes, so cached artifacts are re-generated rather than served
#: with a stale layout encoding.
SQD_WRITER_VERSION = _PROGRAM_VERSION


def write_sqd(
    layout: SidbLayout,
    design_name: str = "layout",
    defects: SurfaceDefects | None = None,
) -> str:
    """Serialize an SiDB layout as a SiQAD .sqd XML document."""
    root = ET.Element("siqad")
    program = ET.SubElement(root, "program")
    ET.SubElement(program, "file_purpose").text = "save"
    ET.SubElement(program, "name").text = _PROGRAM_NAME
    ET.SubElement(program, "version").text = _PROGRAM_VERSION

    gui = ET.SubElement(root, "gui")
    ET.SubElement(gui, "zoom").text = "1"

    design = ET.SubElement(root, "design", {"name": design_name})
    ET.SubElement(
        design,
        "layer_prop",
        {"name": "Lattice", "type": "Lattice", "role": "Design"},
    )
    db_layer = ET.SubElement(
        design, "layer", {"type": "DB", "name": "Surface"}
    )
    for site in layout.sites():
        dbdot = ET.SubElement(db_layer, "dbdot")
        ET.SubElement(dbdot, "layer_id").text = "2"
        ET.SubElement(
            dbdot,
            "latcoord",
            {"n": str(site.n), "m": str(site.m), "l": str(site.l)},
        )
        x_nm, y_nm = site.position_nm
        ET.SubElement(
            dbdot,
            "physloc",
            {"x": f"{x_nm * 10:.6f}", "y": f"{y_nm * 10:.6f}"},
        )
    if defects:
        defect_layer = ET.SubElement(
            design, "layer", {"type": "Defects", "name": "Defects"}
        )
        for defect in defects:
            element = ET.SubElement(defect_layer, "defect")
            ET.SubElement(element, "layer_id").text = "3"
            coords = ET.SubElement(element, "incl_coords")
            ET.SubElement(
                coords,
                "latcoord",
                {
                    "n": str(defect.site.n),
                    "m": str(defect.site.m),
                    "l": str(defect.site.l),
                },
            )
            ET.SubElement(element, "defect_type").text = defect.kind.value
            ET.SubElement(element, "charge").text = str(defect.charge)
    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def read_sqd(text: str) -> SidbLayout:
    """Parse a SiQAD .sqd XML document into an SiDB layout."""
    root = ET.fromstring(text)
    layout = SidbLayout()
    for dbdot in root.iter("dbdot"):
        latcoord = dbdot.find("latcoord")
        if latcoord is None:
            raise ValueError("dbdot without latcoord")
        site = LatticeSite(
            int(latcoord.get("n", "0")),
            int(latcoord.get("m", "0")),
            int(latcoord.get("l", "0")),
        )
        layout.add(site)
    return layout


def read_sqd_defects(text: str) -> SurfaceDefects:
    """Parse the ``Defects`` layer of a SiQAD .sqd XML document."""
    root = ET.fromstring(text)
    defects = SurfaceDefects()
    for element in root.iter("defect"):
        latcoord = element.find("incl_coords/latcoord")
        if latcoord is None:
            raise ValueError("defect without incl_coords/latcoord")
        site = LatticeSite(
            int(latcoord.get("n", "0")),
            int(latcoord.get("m", "0")),
            int(latcoord.get("l", "0")),
        )
        kind_text = element.findtext("defect_type", DefectType.DB.value)
        charge_text = element.findtext("charge")
        defects.add(
            SidbDefect(
                site,
                DefectType(kind_text),
                charge=None if charge_text is None else int(charge_text),
            )
        )
    return defects


def save_sqd(
    layout: SidbLayout,
    path: str,
    design_name: str = "layout",
    defects: SurfaceDefects | None = None,
) -> None:
    """Write a .sqd file to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_sqd(layout, design_name, defects))


def load_sqd(path: str) -> SidbLayout:
    """Read a .sqd file from disk."""
    with open(path, encoding="utf-8") as handle:
        return read_sqd(handle.read())
