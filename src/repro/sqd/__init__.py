"""SiQAD design-file (.sqd) I/O (flow step 8)."""

from repro.sqd.sqd import SQD_WRITER_VERSION, read_sqd, write_sqd

__all__ = ["SQD_WRITER_VERSION", "read_sqd", "write_sqd"]
