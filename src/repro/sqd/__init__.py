"""SiQAD design-file (.sqd) I/O (flow step 8)."""

from repro.sqd.sqd import read_sqd, write_sqd

__all__ = ["read_sqd", "write_sqd"]
