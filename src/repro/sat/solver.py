"""A conflict-driven clause-learning (CDCL) SAT solver.

Implements the standard modern architecture: two-watched-literal
propagation, first-UIP conflict analysis with clause minimization,
exponential VSIDS branching, phase saving, Luby-sequence restarts and
activity-based learnt-clause deletion.  Pure Python, tuned for the
problem sizes produced by the physical design and verification encodings
of this framework (thousands of variables, tens of thousands of clauses).

Internal literal encoding: variable ``v`` (1-based) maps to ``2*v`` for
the positive and ``2*v + 1`` for the negative literal, so negation is
``lit ^ 1``.
"""

from __future__ import annotations

import enum
import heapq
import time
from typing import Iterable, Sequence

from repro import obs
from repro.sat.cnf import Cnf


class SolverResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


def _luby_simple(i: int) -> int:
    """Luby sequence via the classic characterization, iteratively.

    The textbook definition recurses on ``i - 2^(k-1) + 1`` whenever
    ``i`` is not of the form ``2^k - 1``; unrolled into a loop so deep
    restart counts can never hit Python's recursion limit.
    """
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


_UNASSIGNED = -1


class Solver:
    """CDCL SAT solver with incremental assumption-based solving."""

    def __init__(self, cnf: Cnf | None = None) -> None:
        self._num_vars = 0
        # assignment[v] in {0 (false), 1 (true), _UNASSIGNED}
        self._assign: list[int] = [0]
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[int] = [0]
        self._watches: dict[int, list[list[int]]] = {}
        self._clauses: list[list[int]] = []
        self._learnts: list[list[int]] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        # Lazy VSIDS max-heap: entries are (-activity, var); stale
        # entries (outdated activity or already-assigned vars) are
        # skipped on pop and re-pushed on unassignment.
        self._order: list[tuple[float, int]] = []
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned = 0
        self.max_conflicts: int | None = None
        #: Wall-clock deadline (``time.monotonic()`` timestamp); checked
        #: on entry and at restart boundaries, yielding ``UNKNOWN`` once
        #: exceeded.  ``None`` disables the check.
        self.deadline: float | None = None
        if cnf is not None:
            self.add_cnf(cnf)

    # --- problem construction -------------------------------------------
    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(0)
            v = self._num_vars
            self._watches[2 * v] = []
            self._watches[2 * v + 1] = []
            self._heap_push(v)

    def add_cnf(self, cnf: Cnf) -> None:
        self._ensure_var(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a problem clause (DIMACS literals)."""
        if not self._ok:
            return
        seen: set[int] = set()
        clause: list[int] = []
        for dimacs in literals:
            var = abs(dimacs)
            self._ensure_var(var)
            lit = 2 * var + (1 if dimacs < 0 else 0)
            if lit ^ 1 in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            # Skip literals already falsified at level 0; satisfied
            # clauses at level 0 are dropped.
            value = self._lit_value(lit)
            if value == 1 and self._level[var] == 0:
                return
            if value == 0 and self._level[var] == 0:
                continue
            clause.append(lit)
        if not clause:
            self._ok = False
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
            elif self._propagate() is not None:
                self._ok = False
            return
        self._attach(clause)
        self._clauses.append(clause)

    # --- internal helpers -------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, _UNASSIGNED."""
        value = self._assign[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _attach(self, clause: list[int]) -> None:
        # Clauses watching literal L are stored in _watches[L].
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        value = self._lit_value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = lit >> 1
        self._assign[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            falsified = lit ^ 1
            watch_list = self._watches[falsified]
            new_list: list[list[int]] = []
            i = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                # Ensure the falsified literal is at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    new_list.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_list.append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: restore remaining watches and report.
                    new_list.extend(watch_list[i:n])
                    self._watches[falsified] = new_list
                    return clause
            self._watches[falsified] = new_list
        return None

    # --- VSIDS ------------------------------------------------------------
    def _heap_push(self, var: int) -> None:
        heapq.heappush(self._order, (-self._activity[var], var))

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._rebuild_heap()
        heapq.heappush(self._order, (-self._activity[var], var))

    def _rebuild_heap(self) -> None:
        self._order = [
            (-self._activity[v], v)
            for v in range(1, self._num_vars + 1)
            if self._assign[v] == _UNASSIGNED
        ]
        heapq.heapify(self._order)

    def _decay(self) -> None:
        self._var_inc *= self._var_decay

    def _pick_branch_var(self) -> int:
        while self._order:
            neg_activity, var = self._order[0]
            if (
                self._assign[var] == _UNASSIGNED
                and -neg_activity == self._activity[var]
            ):
                return var
            heapq.heappop(self._order)
        # Heap exhausted: fall back to a linear sweep (also re-fills it).
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED:
                self._heap_push(var)
        while self._order:
            neg_activity, var = self._order[0]
            if self._assign[var] == _UNASSIGNED:
                return var
            heapq.heappop(self._order)
        return 0

    # --- conflict analysis ------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning; returns (learnt clause, backtrack level)."""
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = -1
        reason: Sequence[int] = conflict
        index = len(self._trail)
        current_level = len(self._trail_lim)

        while True:
            for q in reason:
                if lit != -1 and q == lit:
                    continue
                var = q >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Find the next trail literal to resolve on.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[lit >> 1]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[lit >> 1] or []
            seen[lit >> 1] = False  # resolved away

        learnt[0] = lit ^ 1

        # Clause minimization: drop literals implied by the rest.
        marked = set(q >> 1 for q in learnt)
        minimized = [learnt[0]]
        for q in learnt[1:]:
            reason_q = self._reason[q >> 1]
            if reason_q is None:
                minimized.append(q)
                continue
            if all(
                (r >> 1) in marked or self._level[r >> 1] == 0
                for r in reason_q
                if r != (q ^ 1)
            ):
                continue
            minimized.append(q)
        learnt = minimized

        if len(learnt) == 1:
            return learnt, 0
        # Backtrack level: second highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[learnt[i] >> 1] > self._level[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[learnt[1] >> 1]

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = lit >> 1
            self._phase[var] = self._assign[var]
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._order, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _reduce_learnts(self) -> None:
        """Drop half of the learnt clauses, preferring long, inactive ones."""
        if len(self._learnts) < 2:
            return
        self._learnts.sort(key=len)
        keep = self._learnts[: len(self._learnts) // 2]
        drop = set(map(id, self._learnts[len(self._learnts) // 2:]))
        locked = set()
        for var in range(1, self._num_vars + 1):
            reason = self._reason[var]
            if reason is not None:
                locked.add(id(reason))
        for lit, watch_list in self._watches.items():
            self._watches[lit] = [
                c for c in watch_list if id(c) not in drop or id(c) in locked
            ]
        self._learnts = keep + [
            c for c in self._learnts[len(self._learnts) // 2:] if id(c) in locked
        ]

    # --- main search --------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SolverResult:
        """Solve under the given assumption literals (DIMACS convention).

        Returns ``UNKNOWN`` when ``max_conflicts`` or ``deadline`` is
        exhausted before the search concludes.  When observability is
        enabled, one ``sat.solve`` span reports the decision/
        propagation/conflict/learnt-clause/restart counters of this
        call.
        """
        if not obs.enabled():
            return self._search(assumptions)
        with obs.span("sat.solve") as span:
            marks = (
                self.decisions,
                self.propagations,
                self.conflicts,
                self.learned,
                self.restarts,
            )
            result = self._search(assumptions)
            span.set("result", result.value)
            span.add("sat.decisions", self.decisions - marks[0])
            span.add("sat.propagations", self.propagations - marks[1])
            span.add("sat.conflicts", self.conflicts - marks[2])
            span.add("sat.learned_clauses", self.learned - marks[3])
            span.add("sat.restarts", self.restarts - marks[4])
            return result

    def _search(self, assumptions: Sequence[int] = ()) -> SolverResult:
        if not self._ok:
            return SolverResult.UNSAT
        if self.deadline is not None and time.monotonic() > self.deadline:
            return SolverResult.UNKNOWN
        for dimacs in assumptions:
            self._ensure_var(abs(dimacs))
        assumption_lits = [
            2 * abs(d) + (1 if d < 0 else 0) for d in assumptions
        ]

        restart_count = 0
        conflict_budget = 100 * _luby_simple(restart_count + 1)
        conflicts_here = 0
        learnt_cap = 4000

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._backtrack_to_root()
                    return SolverResult.UNSAT
                learnt, back_level = self._analyze(conflict)
                self.learned += 1
                self._backtrack(max(back_level, 0))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._backtrack_to_root()
                        return SolverResult.UNSAT
                else:
                    self._attach(learnt)
                    self._learnts.append(learnt)
                    self._enqueue(learnt[0], learnt)
                self._decay()
                if self.max_conflicts is not None and self.conflicts >= self.max_conflicts:
                    self._backtrack_to_root()
                    return SolverResult.UNKNOWN
                if conflicts_here >= conflict_budget:
                    # Restart; the cheap place to honor the wall-clock
                    # deadline without probing the clock per conflict.
                    restart_count += 1
                    self.restarts += 1
                    conflict_budget = 100 * _luby_simple(restart_count + 1)
                    conflicts_here = 0
                    self._backtrack(0)
                    # Restarts are also the cheap place for telemetry:
                    # at most one tick per ~100 conflicts.
                    obs.progress(
                        "sat.restarts",
                        self.restarts,
                        conflicts=self.conflicts,
                    )
                    obs.event(
                        "sat.restart",
                        restarts=self.restarts,
                        conflicts=self.conflicts,
                        learned=len(self._learnts),
                    )
                    if (
                        self.deadline is not None
                        and time.monotonic() > self.deadline
                    ):
                        self._backtrack_to_root()
                        return SolverResult.UNKNOWN
                if len(self._learnts) > learnt_cap:
                    self._reduce_learnts()
                    learnt_cap += 500
                continue

            # Re-establish assumptions after any backtracking.
            if len(self._trail_lim) < len(assumption_lits):
                lit = assumption_lits[len(self._trail_lim)]
                value = self._lit_value(lit)
                if value == 0:
                    self._backtrack_to_root()
                    return SolverResult.UNSAT
                self._trail_lim.append(len(self._trail))
                if value == _UNASSIGNED:
                    self._enqueue(lit, None)
                continue

            # Decision.
            var = self._pick_branch_var()
            if var == 0:
                result = SolverResult.SAT
                self._model = [
                    self._assign[v] == 1 for v in range(self._num_vars + 1)
                ]
                self._backtrack_to_root()
                return result
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            phase = self._phase[var]
            lit = 2 * var + (1 if phase == 0 else 0)
            self._enqueue(lit, None)

    def _backtrack_to_root(self) -> None:
        self._backtrack(0)

    # --- model access -----------------------------------------------------
    _model: list[bool] | None = None

    def model_value(self, var: int) -> bool:
        """Value of a variable in the last SAT model."""
        if self._model is None:
            raise RuntimeError("no model available; call solve() first")
        if var > self._num_vars:
            return False
        return self._model[var]

    def model(self) -> dict[int, bool]:
        """The last SAT model as a variable->bool mapping."""
        if self._model is None:
            raise RuntimeError("no model available; call solve() first")
        return {v: self._model[v] for v in range(1, self._num_vars + 1)}
