"""SAT solving substrate.

The paper's flow leans on SAT/SMT engines in three places: SAT-based exact
physical design (flow step 4), SAT-based equivalence checking (step 5) and
the exact-synthesis NPN database behind cut rewriting (step 2).  Since no
external solver is available in this environment, this package provides a
self-contained CDCL solver with watched literals, VSIDS branching, first-UIP
clause learning, phase saving and Luby restarts, plus the usual encoding
helpers (Tseitin, at-most-one, sequential cardinality).
"""

from repro.sat.cnf import Cnf
from repro.sat.solver import Solver, SolverResult
from repro.sat.encodings import (
    at_least_one,
    at_most_one,
    at_most_k,
    exactly_one,
    tseitin_and,
    tseitin_or,
    tseitin_xor,
)
from repro.sat.dimacs import parse_dimacs, write_dimacs

__all__ = [
    "Cnf",
    "Solver",
    "SolverResult",
    "at_least_one",
    "at_most_one",
    "at_most_k",
    "exactly_one",
    "tseitin_and",
    "tseitin_or",
    "tseitin_xor",
    "parse_dimacs",
    "write_dimacs",
]
