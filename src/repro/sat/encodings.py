"""Standard CNF encoding gadgets.

Tseitin gate encodings plus the cardinality constraints used by the exact
physical design encoding (at-most-one tile occupancy, sequential-counter
at-most-k).
"""

from __future__ import annotations

from typing import Sequence

from repro.sat.cnf import Cnf


# --- Tseitin gate encodings ------------------------------------------------
def tseitin_and(cnf: Cnf, output: int, inputs: Sequence[int]) -> None:
    """output <-> AND(inputs)."""
    for literal in inputs:
        cnf.add_clause([-output, literal])
    cnf.add_clause([output] + [-literal for literal in inputs])


def tseitin_or(cnf: Cnf, output: int, inputs: Sequence[int]) -> None:
    """output <-> OR(inputs)."""
    for literal in inputs:
        cnf.add_clause([output, -literal])
    cnf.add_clause([-output] + list(inputs))


def tseitin_xor(cnf: Cnf, output: int, a: int, b: int) -> None:
    """output <-> a XOR b."""
    cnf.add_clause([-output, a, b])
    cnf.add_clause([-output, -a, -b])
    cnf.add_clause([output, -a, b])
    cnf.add_clause([output, a, -b])


def tseitin_equal(cnf: Cnf, a: int, b: int) -> None:
    """a <-> b."""
    cnf.add_clause([-a, b])
    cnf.add_clause([a, -b])


def tseitin_ite(cnf: Cnf, output: int, cond: int, then: int, other: int) -> None:
    """output <-> (cond ? then : other)."""
    cnf.add_clause([-output, -cond, then])
    cnf.add_clause([-output, cond, other])
    cnf.add_clause([output, -cond, -then])
    cnf.add_clause([output, cond, -other])


# --- cardinality constraints -------------------------------------------------
def at_least_one(cnf: Cnf, literals: Sequence[int]) -> None:
    """At least one of the literals is true."""
    cnf.add_clause(literals)


def at_most_one(cnf: Cnf, literals: Sequence[int]) -> None:
    """At most one literal true.

    Pairwise encoding for small sets, commander-style sequential encoding
    (with auxiliary variables) beyond six literals.
    """
    literals = list(literals)
    n = len(literals)
    if n <= 1:
        return
    if n <= 6:
        for i in range(n):
            for j in range(i + 1, n):
                cnf.add_clause([-literals[i], -literals[j]])
        return
    # Sequential encoding: s_i == "some literal among the first i+1 is true".
    registers = cnf.new_vars(n - 1)
    cnf.add_clause([-literals[0], registers[0]])
    for i in range(1, n - 1):
        cnf.add_clause([-literals[i], registers[i]])
        cnf.add_clause([-registers[i - 1], registers[i]])
        cnf.add_clause([-literals[i], -registers[i - 1]])
    cnf.add_clause([-literals[n - 1], -registers[n - 2]])


def exactly_one(cnf: Cnf, literals: Sequence[int]) -> None:
    """Exactly one literal true."""
    at_least_one(cnf, literals)
    at_most_one(cnf, literals)


def at_most_k(cnf: Cnf, literals: Sequence[int], k: int) -> None:
    """Sequential-counter encoding of sum(literals) <= k."""
    literals = list(literals)
    n = len(literals)
    if k < 0:
        cnf.add_clause([])  # unsatisfiable
        return
    if k == 0:
        for literal in literals:
            cnf.add_clause([-literal])
        return
    if n <= k:
        return
    if k == 1:
        at_most_one(cnf, literals)
        return
    # registers[i][j] == "at least j+1 of the first i+1 literals are true".
    registers = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-literals[0], registers[0][0]])
    for j in range(1, k):
        cnf.add_clause([-registers[0][j]])
    for i in range(1, n):
        cnf.add_clause([-literals[i], registers[i][0]])
        cnf.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            cnf.add_clause([-literals[i], -registers[i - 1][j - 1], registers[i][j]])
            cnf.add_clause([-registers[i - 1][j], registers[i][j]])
        cnf.add_clause([-literals[i], -registers[i - 1][k - 1]])
