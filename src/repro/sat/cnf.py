"""CNF formula container.

Literals follow the DIMACS convention: variables are positive integers,
a negative integer denotes the negated variable.  Zero is never a literal.
"""

from __future__ import annotations

from typing import Iterable


class Cnf:
    """A CNF formula under construction."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; registers any variables beyond ``num_vars``."""
        clause = list(literals)
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a literal")
            self.num_vars = max(self.num_vars, abs(literal))
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={self.num_clauses})"
