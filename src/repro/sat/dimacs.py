"""DIMACS CNF reader and writer."""

from __future__ import annotations

from repro.sat.cnf import Cnf


def parse_dimacs(text: str) -> Cnf:
    """Parse a DIMACS CNF string."""
    cnf = Cnf()
    declared_vars = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {raw_line!r}")
            declared_vars = int(parts[2])
            continue
        literals = [int(token) for token in line.split()]
        if literals and literals[-1] == 0:
            literals = literals[:-1]
        if literals:
            cnf.add_clause(literals)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf


def write_dimacs(cnf: Cnf) -> str:
    """Serialize a CNF in DIMACS format."""
    lines = [f"p cnf {cnf.num_vars} {cnf.num_clauses}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(literal) for literal in clause) + " 0")
    return "\n".join(lines) + "\n"
