"""Stable public API of the repro package.

Everything an application needs lives here under one import::

    from repro import api

    result = api.design("mux21")                     # pristine surface
    result = api.design("c17", engine=api.Engine.EXACT)
    defects = api.SurfaceDefects.sample(120, 92, density_per_nm2=1e-4)
    result = api.design("xor2", defects=defects)     # defect-aware

The deeper module paths (:mod:`repro.flow`, :mod:`repro.sidb`, ...)
remain importable but are implementation detail; only the names
re-exported here are covered by the compatibility snapshot enforced by
``scripts/check_api_surface.py``.
"""

from __future__ import annotations

import os
import sys

from repro.coords.hexagonal import HexCoord
from repro.coords.lattice import LatticeSite
from repro.defects import (
    DefectAwareReport,
    DefectType,
    SidbDefect,
    SurfaceDefects,
    blocked_tiles,
    recheck_layout_against_defects,
)
from repro.flow.design_flow import (
    FLOW_STEP_SPANS,
    DesignResult,
    Engine,
    FlowConfiguration,
    design_sidb_circuit,
)
from repro.flow.reporting import (
    TABLE1_REFERENCE,
    format_table1_row,
    trace_json,
    trace_report,
)
from repro.gatelib.designer import CanvasSearchProblem, search_canvas_design
from repro.gatelib.designs import core_parameters
from repro.gatelib.library import BestagonLibrary
from repro.layout.render import layout_to_ascii, layout_to_svg
from repro.networks import (
    BENCHMARK_NAMES,
    TruthTable,
    Xag,
    benchmark_network,
    benchmark_verilog,
)
from repro.obs import (
    Histogram,
    LineProgressReporter,
    ProgressReporter,
    Span,
    progress_scope,
    set_progress,
    to_chrome_trace,
    to_prometheus,
    trace_from_json,
)
from repro.sidb.bdl import BdlPair, read_bdl_pair
from repro.sidb.charge import SidbLayout
from repro.sidb.clocked import ClockedWire
from repro.sidb.exhaustive import exhaustive_ground_state
from repro.sidb.operational import GateFunctionSpec, check_operational
from repro.sidb.simanneal import SimAnneal, SimAnnealParameters
from repro.sqd.sqd import (
    load_sqd,
    read_sqd,
    read_sqd_defects,
    save_sqd,
    write_sqd,
)
from repro.synthesis.database import NpnDatabase
from repro.tech.constants import (
    MIN_DEFECT_SEPARATION_NM,
    MIN_METAL_PITCH_NM,
)
from repro.tech.parameters import SiDBSimulationParameters
from repro.verification.equivalence import (
    EquivalenceResult,
    check_layout_against_network,
)

__all__ = [
    # The one-call flow.
    "design",
    "load_specification",
    "design_sidb_circuit",
    "DesignResult",
    "FlowConfiguration",
    "Engine",
    "FLOW_STEP_SPANS",
    # Surface defects.
    "DefectType",
    "SidbDefect",
    "SurfaceDefects",
    "DefectAwareReport",
    "blocked_tiles",
    "recheck_layout_against_defects",
    "MIN_DEFECT_SEPARATION_NM",
    # Benchmarks + reporting.
    "BENCHMARK_NAMES",
    "benchmark_network",
    "benchmark_verilog",
    "format_table1_row",
    "TABLE1_REFERENCE",
    "trace_json",
    "trace_report",
    # Telemetry: traces, exporters, live progress.
    "Span",
    "Histogram",
    "ProgressReporter",
    "LineProgressReporter",
    "progress_scope",
    "set_progress",
    "to_chrome_trace",
    "to_prometheus",
    "trace_from_json",
    # Rendering + design files.
    "layout_to_ascii",
    "layout_to_svg",
    "write_sqd",
    "read_sqd",
    "read_sqd_defects",
    "save_sqd",
    "load_sqd",
    # Gate library + designer toolkit.
    "BestagonLibrary",
    "CanvasSearchProblem",
    "search_canvas_design",
    "core_parameters",
    "GateFunctionSpec",
    "check_operational",
    # Physics.
    "SidbLayout",
    "SiDBSimulationParameters",
    "SimAnneal",
    "SimAnnealParameters",
    "exhaustive_ground_state",
    "BdlPair",
    "read_bdl_pair",
    "ClockedWire",
    "MIN_METAL_PITCH_NM",
    # Coordinates + specifications.
    "HexCoord",
    "LatticeSite",
    "TruthTable",
    "Xag",
    # Verification.
    "EquivalenceResult",
    "check_layout_against_network",
]


def load_specification(source: str) -> tuple[str, str]:
    """Resolve ``source`` to ``(verilog text, design name)``.

    ``source`` is a Verilog file path or a built-in benchmark name.  An
    existing file always wins; if its stem also names a benchmark, a
    warning is printed so the shadowing is visible.  A path ending in
    ``.v`` that does not exist is reported as a missing file -- not as
    an unknown benchmark -- and an unknown name lists the valid
    benchmarks.
    """
    if os.path.exists(source):
        if source in BENCHMARK_NAMES:
            print(
                f"warning: '{source}' is both a file and a benchmark "
                "name; using the file (rename it or pass the benchmark "
                "from another directory to get the built-in)",
                file=sys.stderr,
            )
        with open(source, encoding="utf-8") as handle:
            text = handle.read()
        return text, os.path.splitext(os.path.basename(source))[0]
    if source.endswith(".v"):
        raise FileNotFoundError(f"Verilog file not found: '{source}'")
    if source in BENCHMARK_NAMES:
        return benchmark_verilog(source), source
    raise ValueError(
        f"'{source}' is neither a file nor a benchmark "
        f"(known: {', '.join(sorted(BENCHMARK_NAMES))})"
    )


def design(
    specification: str | Xag,
    *,
    name: str | None = None,
    engine: Engine | str = Engine.AUTO,
    defects: SurfaceDefects | None = None,
    configuration: FlowConfiguration | None = None,
    **options,
) -> DesignResult:
    """Run the complete 8-step flow; the one-call entry point.

    ``specification`` is a benchmark name, a Verilog file path, Verilog
    source text, or an :class:`Xag`.  ``defects`` makes every stage of
    the flow design around the given surface defects; ``engine`` picks
    the placement & routing engine.  Remaining keyword ``options`` are
    forwarded to :class:`FlowConfiguration` (e.g. ``verify=False``,
    ``exact_max_width=12``); alternatively pass a ready-made
    ``configuration``, which must not be combined with other knobs.
    """
    if configuration is not None:
        if options or defects is not None or engine != Engine.AUTO:
            raise TypeError(
                "pass either a ready-made 'configuration' or individual "
                "flow options, not both"
            )
        config = configuration
    else:
        config = FlowConfiguration(engine=engine, defects=defects, **options)
    if isinstance(specification, Xag):
        return design_sidb_circuit(specification, name, config)
    if "\n" in specification or "module" in specification:
        return design_sidb_circuit(specification, name, config)
    verilog, resolved = load_specification(specification)
    return design_sidb_circuit(verilog, name or resolved, config)
