"""Stable public API of the repro package.

Everything an application needs lives here under one import::

    from repro import api

    result = api.design("mux21")                     # pristine surface
    result = api.design("c17", engine=api.Engine.EXACT)
    defects = api.SurfaceDefects.sample(120, 92, density_per_nm2=1e-4)
    result = api.design("xor2", defects=defects)     # defect-aware

The deeper module paths (:mod:`repro.flow`, :mod:`repro.sidb`, ...)
remain importable but are implementation detail; only the names
re-exported here are covered by the compatibility snapshot enforced by
``scripts/check_api_surface.py``.
"""

from __future__ import annotations

import os
import sys

from repro import package_version
from repro.coords.hexagonal import HexCoord
from repro.coords.lattice import LatticeSite
from repro.defects import (
    DefectAwareReport,
    DefectType,
    SidbDefect,
    SurfaceDefects,
    blocked_tiles,
    recheck_layout_against_defects,
)
from repro.flow.design_flow import (
    FLOW_STEP_SPANS,
    DesignResult,
    Engine,
    FlowConfiguration,
    design_sidb_circuit,
)
from repro.flow.reporting import (
    REPORT_SCHEMA_VERSION,
    TABLE1_REFERENCE,
    format_table1_row,
    render_summary,
    trace_json,
    trace_report,
)
from repro.gatelib.designer import (
    CanvasSearchProblem,
    screen_canvas_candidates,
    search_canvas_design,
)
from repro.learn import (
    DATASET_SCHEMA_VERSION,
    FEATURE_NAMES,
    FEATURE_VERSION,
    MODEL_SCHEMA_VERSION,
    CandidateGeometry,
    Example,
    ExampleCollector,
    SurrogateGuide,
    SurrogateModel,
    collect_canvas_examples,
    default_learn_dir,
    evaluate_surrogate,
    featurize_candidate,
    load_examples,
    roc_auc,
    screening_pool,
    train_surrogate,
)
from repro.layout.clocking import SCHEMES as _CLOCKING_SCHEME_REGISTRY
from repro.layout.clocking import ClockingScheme, scheme_by_name
from repro.gatelib.designs import core_parameters
from repro.gatelib.library import GATE_LIBRARY_VERSION, BestagonLibrary
from repro.layout.render import layout_to_ascii, layout_to_svg
from repro.networks import (
    BENCHMARK_NAMES,
    TruthTable,
    Xag,
    benchmark_network,
    benchmark_verilog,
)
from repro.obs import (
    Histogram,
    LineProgressReporter,
    ProgressReporter,
    Span,
    progress_scope,
    set_progress,
    to_chrome_trace,
    to_prometheus,
    trace_from_json,
)
from repro.obs.log import LEVELS as LOG_LEVELS
from repro.obs.log import (
    LOG_SCHEMA_VERSION,
    Logger,
    get_logger,
)
from repro.obs.log import bind as log_bind
from repro.obs.log import configure as configure_logging
from repro.obs.log import shutdown as shutdown_logging
from repro.obs.tracing import (
    TraceContext,
    continue_trace,
    new_trace_context,
    parse_traceparent,
)
from repro.sidb.bdl import BdlPair, read_bdl_pair
from repro.sidb.charge import SidbLayout
from repro.sidb.clocked import ClockedWire
from repro.sidb.exhaustive import exhaustive_ground_state
from repro.sidb.operational import GateFunctionSpec, check_operational
from repro.sidb.quickexact import (
    QuickExactStatistics,
    quickexact_ground_state,
)
from repro.service import (
    ArtifactStore,
    DesignService,
    JobScheduler,
    QueueFullError,
    UncacheableConfigurationError,
    default_store_root,
    design_digest,
)
from repro.service.scheduler import JOB_SCHEMA_VERSION
from repro.timing import (
    ClockingExploration,
    ClockingPoint,
    PhaseDelayModel,
    TimingReport,
    analyze_timing,
    explore_clocking,
    pareto_front,
)
from repro.timing.sta import TIMING_SCHEMA_VERSION
from repro.sidb.simanneal import SimAnneal, SimAnnealParameters
from repro.sqd.sqd import (
    SQD_WRITER_VERSION,
    load_sqd,
    read_sqd,
    read_sqd_defects,
    save_sqd,
    write_sqd,
)
from repro.synthesis.database import NpnDatabase
from repro.tech.constants import (
    MIN_DEFECT_SEPARATION_NM,
    MIN_METAL_PITCH_NM,
)
from repro.tech.parameters import EXACT_ENGINES, SiDBSimulationParameters
from repro.verification.equivalence import (
    EquivalenceResult,
    check_layout_against_network,
)

#: Names of the registered clocking schemes; each resolves through
#: :func:`scheme_by_name` and is accepted by ``FlowConfiguration(
#: clocking=...)``.
CLOCKING_SCHEMES = tuple(sorted(_CLOCKING_SCHEME_REGISTRY))

__all__ = [
    # The one-call flow.
    "design",
    "load_specification",
    "design_sidb_circuit",
    "DesignResult",
    "FlowConfiguration",
    "Engine",
    "FLOW_STEP_SPANS",
    # Surface defects.
    "DefectType",
    "SidbDefect",
    "SurfaceDefects",
    "DefectAwareReport",
    "blocked_tiles",
    "recheck_layout_against_defects",
    "MIN_DEFECT_SEPARATION_NM",
    # Benchmarks + reporting.
    "BENCHMARK_NAMES",
    "benchmark_network",
    "benchmark_verilog",
    "format_table1_row",
    "TABLE1_REFERENCE",
    "render_summary",
    "REPORT_SCHEMA_VERSION",
    "trace_json",
    "trace_report",
    # Static timing analysis + clocking exploration.
    "TimingReport",
    "PhaseDelayModel",
    "analyze_timing",
    "TIMING_SCHEMA_VERSION",
    "ClockingExploration",
    "ClockingPoint",
    "explore_clocking",
    "pareto_front",
    "ClockingScheme",
    "CLOCKING_SCHEMES",
    "scheme_by_name",
    # Telemetry: traces, exporters, live progress.
    "Span",
    "Histogram",
    "ProgressReporter",
    "LineProgressReporter",
    "progress_scope",
    "set_progress",
    "to_chrome_trace",
    "to_prometheus",
    "trace_from_json",
    # Distributed tracing (W3C trace context).
    "TraceContext",
    "new_trace_context",
    "parse_traceparent",
    "continue_trace",
    # Structured JSON-lines logging.
    "configure_logging",
    "shutdown_logging",
    "get_logger",
    "Logger",
    "log_bind",
    "LOG_LEVELS",
    "LOG_SCHEMA_VERSION",
    # Rendering + design files.
    "layout_to_ascii",
    "layout_to_svg",
    "write_sqd",
    "read_sqd",
    "read_sqd_defects",
    "save_sqd",
    "load_sqd",
    # Gate library + designer toolkit.
    "BestagonLibrary",
    "CanvasSearchProblem",
    "search_canvas_design",
    "screen_canvas_candidates",
    "core_parameters",
    "GateFunctionSpec",
    "check_operational",
    # Learned guidance: featurization, datasets, surrogate, guide.
    "FEATURE_VERSION",
    "FEATURE_NAMES",
    "DATASET_SCHEMA_VERSION",
    "MODEL_SCHEMA_VERSION",
    "CandidateGeometry",
    "featurize_candidate",
    "Example",
    "ExampleCollector",
    "load_examples",
    "collect_canvas_examples",
    "screening_pool",
    "SurrogateModel",
    "train_surrogate",
    "evaluate_surrogate",
    "roc_auc",
    "SurrogateGuide",
    "default_learn_dir",
    # Physics.
    "SidbLayout",
    "SiDBSimulationParameters",
    "SimAnneal",
    "SimAnnealParameters",
    "exhaustive_ground_state",
    "quickexact_ground_state",
    "QuickExactStatistics",
    "EXACT_ENGINES",
    "BdlPair",
    "read_bdl_pair",
    "ClockedWire",
    "MIN_METAL_PITCH_NM",
    # Coordinates + specifications.
    "HexCoord",
    "LatticeSite",
    "TruthTable",
    "Xag",
    # Verification.
    "EquivalenceResult",
    "check_layout_against_network",
    # Design service: artifact cache, job scheduler, HTTP front end.
    "ArtifactStore",
    "JobScheduler",
    "DesignService",
    "JOB_SCHEMA_VERSION",
    "QueueFullError",
    "UncacheableConfigurationError",
    "design_digest",
    "default_store_root",
    "package_version",
    "GATE_LIBRARY_VERSION",
    "SQD_WRITER_VERSION",
]


def load_specification(source: str) -> tuple[str, str]:
    """Resolve ``source`` to ``(verilog text, design name)``.

    ``source`` is a Verilog file path or a built-in benchmark name.  An
    existing file always wins; if its stem also names a benchmark, a
    warning is printed so the shadowing is visible.  A path ending in
    ``.v`` that does not exist is reported as a missing file -- not as
    an unknown benchmark -- and an unknown name lists the valid
    benchmarks.
    """
    if os.path.exists(source):
        if source in BENCHMARK_NAMES:
            print(
                f"warning: '{source}' is both a file and a benchmark "
                "name; using the file (rename it or pass the benchmark "
                "from another directory to get the built-in)",
                file=sys.stderr,
            )
        with open(source, encoding="utf-8") as handle:
            text = handle.read()
        return text, os.path.splitext(os.path.basename(source))[0]
    if source.endswith(".v"):
        raise FileNotFoundError(f"Verilog file not found: '{source}'")
    if source in BENCHMARK_NAMES:
        return benchmark_verilog(source), source
    raise ValueError(
        f"'{source}' is neither a file nor a benchmark "
        f"(known: {', '.join(sorted(BENCHMARK_NAMES))})"
    )


def design(
    specification: str | Xag,
    *,
    name: str | None = None,
    engine: Engine | str = Engine.AUTO,
    defects: SurfaceDefects | None = None,
    configuration: FlowConfiguration | None = None,
    cache: "bool | str | os.PathLike | ArtifactStore | None" = None,
    **options,
) -> DesignResult:
    """Run the complete 8-step flow; the one-call entry point.

    ``specification`` is a benchmark name, a Verilog file path, Verilog
    source text, or an :class:`Xag`.  ``defects`` makes every stage of
    the flow design around the given surface defects; ``engine`` picks
    the placement & routing engine.  Remaining keyword ``options`` are
    forwarded to :class:`FlowConfiguration` (e.g. ``verify=False``,
    ``exact_max_width=12``); alternatively pass a ready-made
    ``configuration``, which must not be combined with other knobs.

    ``cache`` enables the design-service artifact store: ``True`` uses
    the default store (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), a
    path uses a store rooted there, and an :class:`ArtifactStore` is
    used directly.  A hit returns a rehydrated result with
    ``from_cache=True`` and a byte-identical ``.sqd``; a miss runs the
    flow and persists its artifacts.  Configurations the cache digest
    cannot canonicalize (custom ``database``/``library`` objects,
    unregistered clocking schemes) silently run uncached.
    """
    if configuration is not None:
        if options or defects is not None or engine != Engine.AUTO:
            raise TypeError(
                "pass either a ready-made 'configuration' or individual "
                "flow options, not both"
            )
        config = configuration
    else:
        config = FlowConfiguration(engine=engine, defects=defects, **options)
    if isinstance(specification, Xag):
        spec: str | Xag = specification
    elif "\n" in specification or "module" in specification:
        spec = specification
    else:
        spec, resolved = load_specification(specification)
        name = name or resolved
    if cache is not None and cache is not False:
        result = _design_cached(spec, name, config, cache)
        if result is not None:
            return result
    return design_sidb_circuit(spec, name, config)


def _design_cached(
    specification: str | Xag,
    name: str | None,
    config: FlowConfiguration,
    cache: "bool | str | os.PathLike | ArtifactStore",
) -> DesignResult | None:
    """The cache-enabled path of :func:`design`.

    Returns ``None`` when the configuration is uncacheable, telling
    the caller to fall through to an uncached run.
    """
    from repro.service.digest import (
        UncacheableConfigurationError,
        design_digest,
        normalize_configuration,
    )
    from repro.service.store import ArtifactStore

    try:
        normalized = normalize_configuration(config)
        digest = design_digest(specification, name, config)
    except UncacheableConfigurationError:
        return None
    store = ArtifactStore.resolve(cache)
    cached = store.load_result(digest)
    if cached is not None:
        return cached
    result = design_sidb_circuit(specification, name, config)
    source = specification if isinstance(specification, str) else None
    store.store_result(digest, result, normalized, source=source)
    return result
