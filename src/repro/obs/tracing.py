"""W3C Trace Context: ``traceparent`` parsing and generation.

The design service correlates everything belonging to one client
request -- HTTP response, job document, worker span tree, log lines,
flight-recorder events -- through a single *trace id*.  The wire
format is the W3C ``traceparent`` header (https://www.w3.org/TR/
trace-context/)::

    traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
                 ^^ ^^^^^^^^^^^^^ trace-id ^^^^^^^^ ^^ span-id ^^^^^^ ^^
                 version                            parent              flags

A client that sends the header sees its own trace id stamped on every
response, job document and span; a client that does not gets a freshly
generated one.  Only the pieces the service needs are implemented:
version-00 parse/format, random id generation, and child-span
derivation.  Invalid headers are rejected by returning ``None`` (the
caller starts a new trace) -- never by raising.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, replace

#: The ``traceparent`` version this implementation emits.
TRACEPARENT_VERSION = "00"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

#: All-zero ids are explicitly invalid per the specification.
_ZERO_TRACE_ID = "0" * 32
_ZERO_SPAN_ID = "0" * 16


@dataclass(frozen=True)
class TraceContext:
    """One request's position in a distributed trace.

    ``trace_id`` identifies the whole end-to-end request (32 lowercase
    hex characters); ``span_id`` identifies this service's own span
    within it (16).  ``sampled`` mirrors the W3C ``sampled`` flag and
    is carried through verbatim -- the service records either way.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """The context as a ``traceparent`` header value."""
        flags = "01" if self.sampled else "00"
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{flags}"
        )

    def child(self) -> "TraceContext":
        """A new span in the same trace (fresh ``span_id``)."""
        return replace(self, span_id=_random_hex(8))


def _random_hex(num_bytes: int) -> str:
    return os.urandom(num_bytes).hex()


def new_trace_context() -> TraceContext:
    """A fresh trace: random trace and span ids, sampled."""
    return TraceContext(trace_id=_random_hex(16), span_id=_random_hex(8))


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header value; ``None`` when invalid.

    Unknown future versions are accepted as long as the version-00
    fields parse (per the specification's forward-compatibility rule),
    except the reserved value ``ff``.  All-zero trace or span ids are
    invalid.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff":
        return None
    if trace_id == _ZERO_TRACE_ID or span_id == _ZERO_SPAN_ID:
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=bool(int(flags, 16) & 0x01),
    )


def continue_trace(header: str | None) -> TraceContext:
    """The server-side context for an incoming request.

    A valid ``traceparent`` keeps the client's trace id but takes a
    fresh span id (this service is a new span in the client's trace);
    anything else starts a new trace.
    """
    parsed = parse_traceparent(header)
    if parsed is None:
        return new_trace_context()
    return parsed.child()
