"""``repro.obs`` -- dependency-free tracing and metrics for the flow.

fiction prints per-step statistics and SiQAD exposes per-engine
telemetry; this package is our equivalent substrate.  Instrumented code
opens hierarchical :class:`~repro.obs.core.Span` regions (wall *and*
CPU time) and reports named counters and gauges into the innermost open
span::

    from repro import obs

    with obs.span("exact.candidate") as sp:
        sp.set("width", 4)
        sp.add("sat.conflicts", solver.conflicts)

Recording is **off by default**: every entry point returns after one
attribute check (``obs.span`` hands back a shared no-op context
manager, ``obs.add``/``obs.gauge`` return immediately), so leaving the
instrumentation in hot paths is free -- ``benchmarks/
bench_obs_overhead.py`` gates the disabled-mode overhead below 2% of
the whole flow.  :func:`capture` scopes recording to one region (the
design flow uses it to attach a finished trace to its
``DesignResult``); :func:`render_tree` and :func:`trace_to_json`
export a trace for humans and machines respectively.

Beyond spans and counters the package carries three more signals:

* :func:`observe` feeds a bounded :class:`~repro.obs.metrics.Histogram`
  on the innermost span (per-candidate CNF sizes, anneal energies);
* :func:`event` appends to a fixed-size flight-recorder ring
  (:func:`events` reads it back, oldest first);
* :func:`progress` ticks an installed
  :class:`~repro.obs.events.ProgressReporter` -- the CLI's
  ``--progress`` flag installs a single-line renderer via
  :func:`progress_scope`.

:func:`to_chrome_trace` and :func:`to_prometheus` export any span tree
in the Chrome trace-event (Perfetto) and Prometheus text formats; the
``repro trace export`` subcommand wraps them for saved trace files.
Worker processes spawned by :mod:`repro.sidb.parallel` capture their
own span trees and ship them back to the parent, which merges them
under a ``parallel`` span with per-worker attribution -- so multi-
process runs trace exactly like serial ones, modulo timings.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import log
from repro.obs.core import NULL_SPAN, NullSpan, Recorder, Span
from repro.obs.events import (
    DEFAULT_EVENT_CAPACITY,
    Event,
    EventRing,
    LineProgressReporter,
    ProgressReporter,
)
from repro.obs.export import SpanAggregate, to_chrome_trace, to_prometheus
from repro.obs.log import LOG_SCHEMA_VERSION, Logger, get_logger
from repro.obs.metrics import Histogram
from repro.obs.render import render_tree, trace_from_json, trace_to_json
from repro.obs.tracing import (
    TraceContext,
    continue_trace,
    new_trace_context,
    parse_traceparent,
)

__all__ = [
    "Event",
    "EventRing",
    "Histogram",
    "LOG_SCHEMA_VERSION",
    "LineProgressReporter",
    "Logger",
    "NullSpan",
    "ProgressReporter",
    "Recorder",
    "Span",
    "SpanAggregate",
    "TraceContext",
    "add",
    "capture",
    "continue_trace",
    "current",
    "disable",
    "enable",
    "enabled",
    "event",
    "events",
    "gauge",
    "get_logger",
    "log",
    "new_trace_context",
    "observe",
    "parse_traceparent",
    "progress",
    "progress_scope",
    "record_event",
    "render_tree",
    "reset",
    "set_event_capacity",
    "set_progress",
    "span",
    "to_chrome_trace",
    "to_prometheus",
    "trace_from_json",
    "trace_to_json",
]

#: The process-wide recorder behind the module-level API.
_recorder = Recorder()

#: The process-wide flight recorder behind :func:`event`.
_events = EventRing(DEFAULT_EVENT_CAPACITY)

#: The installed progress reporter (``None`` keeps :func:`progress` free).
_progress: ProgressReporter | None = None


def enable() -> None:
    """Turn recording on (process-wide)."""
    _recorder.enabled = True


def disable() -> None:
    """Turn recording off; already-captured traces stay intact."""
    _recorder.enabled = False


def enabled() -> bool:
    """Whether spans and counters are currently recorded."""
    return _recorder.enabled


def reset() -> None:
    """Drop all recorded spans, counters and events (keeps the enabled
    flag and any installed progress reporter)."""
    _recorder.reset()
    _events.clear()


def recorder() -> Recorder:
    """The process-wide recorder (tests and advanced callers)."""
    return _recorder


class _SpanHandle:
    """Context manager that closes its span on exit."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        _recorder.end(self._span)


class _NoopHandle:
    """Shared, allocation-free handle returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        pass


_NOOP = _NoopHandle()


def span(name: str, **attributes: object):
    """Open a child span of the innermost open span (or a new root).

    Returns a context manager yielding the :class:`Span` -- or, when
    recording is disabled, a shared no-op handle yielding a
    :class:`NullSpan` whose ``set``/``add`` do nothing.
    """
    if not _recorder.maybe_enabled or not _recorder.enabled:
        return _NOOP
    opened = _recorder.start(name)
    if attributes:
        opened.attributes.update(attributes)
    return _SpanHandle(opened)


def add(name: str, value: float = 1.0) -> None:
    """Accumulate a counter on the innermost open span."""
    if not _recorder.maybe_enabled or not _recorder.enabled:
        return
    current_span = _recorder.current()
    if current_span is not None:
        current_span.add(name, value)
    else:
        _recorder.counters[name] = _recorder.counters.get(name, 0.0) + value


def gauge(name: str, value: object) -> None:
    """Set a point-in-time value (attribute) on the innermost open span."""
    if not _recorder.maybe_enabled or not _recorder.enabled:
        return
    current_span = _recorder.current()
    if current_span is not None:
        current_span.set(name, value)


def current() -> Span | NullSpan:
    """The innermost open span (a :class:`NullSpan` when disabled/idle)."""
    if not _recorder.maybe_enabled or not _recorder.enabled:
        return NULL_SPAN
    return _recorder.current() or NULL_SPAN


def observe(name: str, value: float) -> None:
    """Record one histogram observation on the innermost open span."""
    if not _recorder.maybe_enabled or not _recorder.enabled:
        return
    current_span = _recorder.current()
    if current_span is not None:
        current_span.observe(name, value)


def event(name: str, **attributes: object) -> None:
    """Append a flight-recorder event (only while recording is enabled)."""
    if not _recorder.maybe_enabled or not _recorder.enabled:
        return
    _events.append(Event(name, time.perf_counter(), attributes))


def record_event(name: str, **attributes: object) -> None:
    """Append a flight-recorder event regardless of the recording flag.

    Service lifecycle events (job admitted, worker respawned, drain
    started) must reach ``GET /v1/events`` subscribers on production
    runs where span recording is off, so -- like :func:`progress` --
    this bypasses the :func:`enabled` gate.  Use sparingly: hot-path
    instrumentation belongs in :func:`event`.
    """
    _events.append(Event(name, time.perf_counter(), attributes))


def events() -> list[Event]:
    """The retained flight-recorder events, oldest first."""
    return _events.snapshot()


def event_ring() -> EventRing:
    """The process-wide flight recorder (tests and advanced callers)."""
    return _events


def set_event_capacity(capacity: int) -> None:
    """Resize the flight recorder (drops currently retained events)."""
    global _events
    _events = EventRing(capacity)


def progress(
    stage: str, current: int, total: int | None = None, **info: object
) -> None:
    """Report a progress tick to the installed reporter (if any).

    Unlike spans/counters this is *not* gated on :func:`enabled` --
    progress reporting is useful on production runs with tracing off --
    but it still costs only one ``is None`` check when no reporter is
    installed.
    """
    if _progress is None:
        return
    _progress.update(stage, current, total, **info)


def set_progress(reporter: ProgressReporter | None) -> None:
    """Install (or with ``None`` remove) the process-wide reporter."""
    global _progress
    _progress = reporter


@contextmanager
def progress_scope(reporter: ProgressReporter) -> Iterator[ProgressReporter]:
    """Install a progress reporter for one region, restoring on exit.

    Calls the reporter's ``finish()`` (when it has one) on the way out
    so single-line renderers leave a clean terminal.
    """
    global _progress
    previous = _progress
    _progress = reporter
    try:
        yield reporter
    finally:
        _progress = previous
        finish = getattr(reporter, "finish", None)
        if callable(finish):
            finish()


class capture:
    """Scope recording to one region and keep its finished root span.

    ``enable=True`` force-enables recording for the duration (restoring
    the previous state afterwards); ``enable=None`` leaves the global
    switch untouched (so a globally-enabled session still records);
    ``enable=False`` force-disables.  The force-(en/dis)able is scoped
    to the *capturing thread* -- concurrent flows in sibling threads
    keep their own recording state, and each thread's spans land in its
    own tree.  The root span is available as ``.span`` (``None`` when
    nothing was recorded)::

        with obs.capture("design_flow", enable=True) as cap:
            ...
        trace = cap.span
    """

    def __init__(self, name: str, enable: bool | None = None) -> None:
        self.name = name
        self._enable = enable
        self.span: Span | None = None
        self._previous: bool | None = None

    def __enter__(self) -> "capture":
        self._previous = _recorder.override()
        if self._enable is not None:
            _recorder.set_override(self._enable)
        if _recorder.enabled:
            self.span = _recorder.start(self.name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.span is not None:
            _recorder.end(self.span)
            # The capture owns its trace: detach it from the recorder so
            # repeated captures (e.g. one per flow run) cannot accumulate
            # in the process-wide root list.
            if self.span in _recorder.roots:
                _recorder.roots.remove(self.span)
        _recorder.set_override(self._previous)
