"""Observability overhead measurement on the full design flow.

Times three variants of the identical ``par_check`` flow:

* **stub** -- the :mod:`repro.obs` entry points *and* the
  :mod:`repro.obs.log` logger methods are swapped for bare no-ops,
  approximating a build with the tracing and structured-logging
  instrumentation deleted (the baseline);
* **disabled** -- the real entry points with recording off, i.e. the
  shipped default fast path;
* **enabled** -- full trace recording (``FlowConfiguration.trace=True``).

The contract gated by ``benchmarks/bench_obs_overhead.py`` and
``scripts/bench_perf.py`` is that *disabled* costs less than
:data:`DISABLED_OVERHEAD_LIMIT` (2%) over *stub* -- if the no-op fast
path ever grows allocations or lock traffic, this is the canary that
trips.  The overheads are medians of per-round paired CPU-time ratios
(see :func:`run_overhead_benchmark`); the reported per-variant seconds
are minima over the repeats.
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path

from repro import obs
from repro.flow.design_flow import FlowConfiguration, design_sidb_circuit
from repro.gatelib.library import BestagonLibrary
from repro.networks import benchmark_verilog
from repro.obs import _NOOP
from repro.obs import log as obs_log
from repro.synthesis.database import NpnDatabase

#: The acceptance benchmark: the paper's largest trindade16 circuit.
OVERHEAD_BENCHMARK = "par_check"

#: Maximum tolerated flow slowdown with observability disabled.
DISABLED_OVERHEAD_LIMIT = 0.02


def _stub_span(name, **attributes):
    return _NOOP


def _stub_add(name, value=1.0):
    return None


def _stub_gauge(name, value):
    return None


def _stub_observe(name, value):
    return None


def _stub_event(name, **attributes):
    return None


def _stub_progress(stage, current, total=None, **info):
    return None


def _stub_log(self, event, **fields):
    return None


def _stub_record(*args, **kwargs):
    return None


#: Logger methods neutralized by :class:`_stubbed`.  The disabled
#: logger already early-outs on a single ``_state is None`` check, so
#: the stub baseline must delete even that to keep the 2% comparison
#: honest for the structured-logging call sites too.
_LOG_METHODS = ("debug", "info", "warning", "error")


class _stubbed:
    """Temporarily replace the obs entry points with bare no-ops.

    Covers the trace/metric entry points, the structured-logging
    ``Logger`` methods *and* the :mod:`repro.learn.hooks` record
    functions (with the collector forced off), so the stub variant
    approximates a build with the tracing, logging and learn-collection
    instrumentation deleted.
    """

    def __enter__(self) -> "_stubbed":
        from repro.learn import hooks as learn_hooks

        self._saved = (
            obs.span, obs.add, obs.gauge,
            obs.observe, obs.event, obs.progress,
        )
        obs.span = _stub_span  # type: ignore[assignment]
        obs.add = _stub_add  # type: ignore[assignment]
        obs.gauge = _stub_gauge  # type: ignore[assignment]
        obs.observe = _stub_observe  # type: ignore[assignment]
        obs.event = _stub_event  # type: ignore[assignment]
        obs.progress = _stub_progress  # type: ignore[assignment]
        self._saved_log = tuple(
            getattr(obs_log.Logger, name) for name in _LOG_METHODS
        )
        for name in _LOG_METHODS:
            setattr(obs_log.Logger, name, _stub_log)
        self._learn_hooks = learn_hooks
        self._saved_learn = (
            learn_hooks.COLLECTOR,
            learn_hooks.record_canvas,
            learn_hooks.record_operational,
        )
        learn_hooks.COLLECTOR = None
        learn_hooks.record_canvas = _stub_record  # type: ignore[assignment]
        learn_hooks.record_operational = _stub_record  # type: ignore[assignment]
        return self

    def __exit__(self, *exc_info: object) -> None:
        (
            obs.span, obs.add, obs.gauge,
            obs.observe, obs.event, obs.progress,
        ) = self._saved
        for name, method in zip(_LOG_METHODS, self._saved_log):
            setattr(obs_log.Logger, name, method)
        (
            self._learn_hooks.COLLECTOR,
            self._learn_hooks.record_canvas,
            self._learn_hooks.record_operational,
        ) = self._saved_learn


def run_overhead_benchmark(
    repeats: int = 11,
    name: str = OVERHEAD_BENCHMARK,
    inner_iterations: int = 10,
    attempts: int = 2,
) -> dict:
    """Measure stub/disabled/enabled flow CPU times; returns the record.

    The NPN database and gate library are shared across all runs so the
    measurement isolates the flow itself.  Four noise defenses keep
    the 2% gate honest: samples are **CPU** time (scheduler noise on a
    shared machine dwarfs the effect being measured), each sample runs
    ``inner_iterations`` back-to-back flows (one warm flow is ~15 ms; a
    single run would put timer jitter on the same order as the gate),
    the overheads are **median of per-round paired ratios** -- all
    three variants run back-to-back within one round, so a slow stretch
    of the machine inflates a round's numerator and denominator
    together and cancels in the ratio, while the median discards the
    rounds where it didn't -- and a measurement over the limit is
    **re-measured up to** ``attempts`` **times keeping the best**: a
    genuine fast-path regression reproduces on every attempt, a one-off
    scheduling spike does not.  The variant order still rotates per
    round so in-process drift (allocator growth, GC pressure) has no
    preferred victim.
    """
    verilog = benchmark_verilog(name)
    database = NpnDatabase()
    library = BestagonLibrary()

    def run_flow(trace: bool):
        configuration = FlowConfiguration(
            trace=trace, database=database, library=library
        )
        return design_sidb_circuit(verilog, name, configuration)

    def measure_once() -> dict:
        times: dict[str, list[float]] = {
            "stub": [], "disabled": [], "enabled": []
        }
        trace_spans = 0

        def measure_stub() -> float:
            with _stubbed():
                begin = time.process_time()
                for _ in range(inner_iterations):
                    run_flow(False)
                return (time.process_time() - begin) / inner_iterations

        def measure_disabled() -> float:
            begin = time.process_time()
            for _ in range(inner_iterations):
                run_flow(False)
            return (time.process_time() - begin) / inner_iterations

        def measure_enabled() -> float:
            nonlocal trace_spans
            begin = time.process_time()
            for _ in range(inner_iterations):
                result = run_flow(True)
                trace_spans = sum(1 for _ in result.trace.walk())
            return (time.process_time() - begin) / inner_iterations

        variants = [
            ("stub", measure_stub),
            ("disabled", measure_disabled),
            ("enabled", measure_enabled),
        ]
        for round_index in range(repeats):
            for offset in range(len(variants)):
                key, measure = variants[
                    (round_index + offset) % len(variants)
                ]
                gc.collect()
                times[key].append(measure())

        disabled_overhead = statistics.median(
            disabled / stub - 1.0
            for stub, disabled in zip(times["stub"], times["disabled"])
        )
        enabled_overhead = statistics.median(
            enabled / stub - 1.0
            for stub, enabled in zip(times["stub"], times["enabled"])
        )
        return {
            "benchmark": name,
            "covers": "tracing+logging+learn",
            "repeats": repeats,
            "stub_seconds": min(times["stub"]),
            "disabled_seconds": min(times["disabled"]),
            "enabled_seconds": min(times["enabled"]),
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
            "trace_spans": trace_spans,
            "disabled_overhead_limit": DISABLED_OVERHEAD_LIMIT,
            "within_limit": disabled_overhead < DISABLED_OVERHEAD_LIMIT,
        }

    was_enabled = obs.enabled()
    obs.disable()
    try:
        run_flow(False)  # warm-up: NPN cache, imports, allocator
        record = measure_once()
        for _ in range(attempts - 1):
            if record["within_limit"]:
                break
            retry = measure_once()
            if retry["disabled_overhead"] < record["disabled_overhead"]:
                record = retry
    finally:
        if was_enabled:
            obs.enable()
    return record


def run_worker_overhead_benchmark(
    repeats: int = 9,
    inner_iterations: int = 3,
    workers: int = 2,
    attempts: int = 3,
) -> dict:
    """Disabled-path overhead of the *worker-side* capture plumbing.

    The cross-process span shipping adds a ``_captured_call`` wrapper
    and per-task progress ticks around every ``run_tasks`` fan-out --
    all of which must stay no-ops while recording is disabled.  This
    measures a process-parallel anneal (``parallel_simanneal`` with
    ``workers=2``) stub vs. disabled, same paired-ratio (and
    retry-over-limit) methodology as :func:`run_overhead_benchmark`.
    Wall time (not CPU) is compared: the work happens in child
    processes the parent's ``process_time`` cannot see.  Pool spawning
    dominates each sample, which is exactly the point -- the plumbing
    must vanish inside real fan-out costs -- but it also makes the
    samples far noisier than the serial benchmark's, hence the higher
    round count.
    """
    from repro.sidb.parallel import parallel_simanneal
    from repro.sidb.perfbench import scaling_layout
    from repro.sidb.simanneal import SimAnnealParameters

    layout = scaling_layout(14)
    schedule = SimAnnealParameters(instances=8, sweeps=300, seed=1)

    def measure(stub: bool) -> float:
        begin = time.perf_counter()
        for _ in range(inner_iterations):
            parallel_simanneal(layout, schedule=schedule, workers=workers)
        return (time.perf_counter() - begin) / inner_iterations

    def measure_stub() -> float:
        with _stubbed():
            return measure(True)

    def measure_once() -> dict:
        times: dict[str, list[float]] = {"stub": [], "disabled": []}
        variants = [
            ("stub", measure_stub),
            ("disabled", lambda: measure(False)),
        ]
        for round_index in range(repeats):
            for offset in range(len(variants)):
                key, run = variants[(round_index + offset) % len(variants)]
                gc.collect()
                times[key].append(run())

        disabled_overhead = statistics.median(
            disabled / stub - 1.0
            for stub, disabled in zip(times["stub"], times["disabled"])
        )
        return {
            "benchmark": f"parallel_simanneal(workers={workers})",
            "workers": workers,
            "repeats": repeats,
            "stub_seconds": min(times["stub"]),
            "disabled_seconds": min(times["disabled"]),
            "disabled_overhead": disabled_overhead,
            "disabled_overhead_limit": DISABLED_OVERHEAD_LIMIT,
            "within_limit": disabled_overhead < DISABLED_OVERHEAD_LIMIT,
        }

    was_enabled = obs.enabled()
    obs.disable()
    try:
        parallel_simanneal(layout, schedule=schedule, workers=workers)
        record = measure_once()
        for _ in range(attempts - 1):
            if record["within_limit"]:
                break
            retry = measure_once()
            if retry["disabled_overhead"] < record["disabled_overhead"]:
                record = retry
    finally:
        if was_enabled:
            obs.enable()
    return record


def run_learn_hook_overhead_benchmark(
    repeats: int = 9,
    inner_iterations: int = 40,
    attempts: int = 3,
) -> dict:
    """Disabled-path overhead of the learn collection hooks.

    :func:`~repro.gatelib.designer.score_design` and
    :func:`~repro.sidb.operational.check_operational` each gained a
    ``COLLECTOR is not None`` hook after their physics; with no
    collector installed that must stay one attribute check, mirroring
    the obs contract.  This times a small ``check_operational`` (a
    3-pair wire, exact engine) stub vs. disabled under the same
    paired-ratio + retry-keep-best methodology and the same
    :data:`DISABLED_OVERHEAD_LIMIT` gate as the flow benchmark.
    """
    from repro.coords.lattice import LatticeSite
    from repro.networks.truth_table import TruthTable
    from repro.sidb.bdl import BdlPair
    from repro.sidb.operational import GateFunctionSpec, check_operational
    from repro.tech.parameters import SiDBSimulationParameters

    S = LatticeSite.from_row
    body = [S(0, r) for r in (0, 2, 6, 8, 12, 14)] + [S(0, 18)]
    stimuli = [([S(0, -6)], [S(0, -2)])]
    pairs = [BdlPair(S(0, 12), S(0, 14))]
    spec = GateFunctionSpec((TruthTable(1, 0b10),))
    parameters = SiDBSimulationParameters(mu_minus=-0.32)

    def run_check():
        return check_operational(
            body, stimuli, pairs, spec, parameters=parameters
        )

    def measure(_stub: bool) -> float:
        begin = time.process_time()
        for _ in range(inner_iterations):
            run_check()
        return (time.process_time() - begin) / inner_iterations

    def measure_stub() -> float:
        with _stubbed():
            return measure(True)

    def measure_once() -> dict:
        times: dict[str, list[float]] = {"stub": [], "disabled": []}
        variants = [
            ("stub", measure_stub),
            ("disabled", lambda: measure(False)),
        ]
        for round_index in range(repeats):
            for offset in range(len(variants)):
                key, run = variants[(round_index + offset) % len(variants)]
                gc.collect()
                times[key].append(run())

        disabled_overhead = statistics.median(
            disabled / stub - 1.0
            for stub, disabled in zip(times["stub"], times["disabled"])
        )
        return {
            "benchmark": "check_operational(wire)",
            "covers": "learn-hooks+tracing+logging",
            "repeats": repeats,
            "stub_seconds": min(times["stub"]),
            "disabled_seconds": min(times["disabled"]),
            "disabled_overhead": disabled_overhead,
            "disabled_overhead_limit": DISABLED_OVERHEAD_LIMIT,
            "within_limit": disabled_overhead < DISABLED_OVERHEAD_LIMIT,
        }

    was_enabled = obs.enabled()
    obs.disable()
    try:
        run_check()  # warm-up: geometry cache, imports
        record = measure_once()
        for _ in range(attempts - 1):
            if record["within_limit"]:
                break
            retry = measure_once()
            if retry["disabled_overhead"] < record["disabled_overhead"]:
                record = retry
    finally:
        if was_enabled:
            obs.enable()
    return record


def write_benchmark_json(record: dict, path: str | Path) -> Path:
    """Write the overhead record where the harness expects it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path
