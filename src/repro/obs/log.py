"""``repro.obs.log`` -- structured JSON-lines logging.

The service-side complement to spans and counters: one JSON object per
line, machine-parseable, with automatic correlation fields.  Logging is
**off by default** and each call site pays a single module-global check
while off, so leaving log statements in the flow keeps the <2%
disabled-path overhead gate honest.

Usage::

    from repro.obs import log

    _LOG = log.get_logger("service.http")

    log.configure(level="info")            # JSON lines on stderr
    with log.bind(trace_id=ctx.trace_id, job_id=job.id):
        _LOG.info("request", method="GET", path="/v1/jobs", status=200)

Every record carries the fixed envelope keys ``ts`` (unix seconds),
``level``, ``logger``, ``event`` and ``pid``, then the fields bound via
:func:`bind` on the calling thread (``trace_id``, ``job_id``, ...) and
the call's own keyword fields.  The key set and value encodings are
versioned as :data:`LOG_SCHEMA_VERSION` and pinned by the golden
snapshot in ``tests/golden/log_lines.jsonl`` plus the
``scripts/check_log_schema.py`` CI gate.

Bound context is *thread-local* (concurrent HTTP handler threads and
flows keep their own correlation fields) and is inherited by everything
the thread calls -- a worker process binds ``trace_id``/``job_id``
around one job so every flow-step record inside carries them.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Iterator, TextIO

#: Version of the log-record envelope (the fixed keys and their
#: meaning).  Bump on any breaking change; additive fields do not.
LOG_SCHEMA_VERSION = 1

#: Level names, most to least verbose, mapped to their numeric rank.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: The envelope keys present on every record, in schema order.
ENVELOPE_KEYS = ("ts", "level", "logger", "event", "pid")

# Clock and pid seams -- patched by the golden-snapshot tests so
# rendered lines are deterministic.
_wall_time = time.time
_getpid = os.getpid


class _State:
    """The process-wide logging configuration (one per :func:`configure`)."""

    __slots__ = ("stream", "level", "lock")

    def __init__(self, stream: TextIO, level: int) -> None:
        self.stream = stream
        self.level = level
        self.lock = threading.Lock()


#: ``None`` means logging is disabled -- the one check every call pays.
_state: _State | None = None

_context = threading.local()


def configure(
    stream: TextIO | None = None, level: str | int = "info"
) -> None:
    """Turn structured logging on (process-wide).

    ``stream`` defaults to ``sys.stderr``; ``level`` is a name from
    :data:`LEVELS` or its numeric rank.  Reconfiguring replaces the
    previous destination and threshold atomically.
    """
    global _state
    if isinstance(level, str):
        try:
            numeric = LEVELS[level]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r} "
                f"(choose from {', '.join(LEVELS)})"
            ) from None
    else:
        numeric = int(level)
    _state = _State(stream if stream is not None else sys.stderr, numeric)


def shutdown() -> None:
    """Turn structured logging off (call sites return immediately)."""
    global _state
    _state = None


def is_enabled() -> bool:
    """Whether any records are currently being written."""
    return _state is not None


def worker_config() -> dict | None:
    """Picklable snapshot of the current configuration for spawning
    worker processes (``None`` when logging is off).  The stream is
    deliberately not part of it -- workers inherit the parent's stderr
    and log there."""
    state = _state
    if state is None:
        return None
    return {"level": state.level}


def apply_worker_config(config: dict | None) -> None:
    """Configure logging in a freshly spawned worker process."""
    if config is not None:
        configure(level=config["level"])


@contextmanager
def bind(**fields: object) -> Iterator[None]:
    """Attach correlation fields to every record on this thread.

    ``None``-valued fields are skipped, so ``bind(trace_id=maybe)`` is
    safe.  Binds nest: inner binds shadow outer keys for their scope
    and the previous mapping is restored on exit.
    """
    previous = getattr(_context, "fields", None)
    merged = dict(previous) if previous else {}
    merged.update(
        (key, value) for key, value in fields.items() if value is not None
    )
    _context.fields = merged
    try:
        yield
    finally:
        _context.fields = previous


def bound_fields() -> dict:
    """The correlation fields currently bound on this thread."""
    fields = getattr(_context, "fields", None)
    return dict(fields) if fields else {}


class Logger:
    """A named source of structured records.

    Cheap enough to create ad hoc, but modules conventionally keep one
    at module level via :func:`get_logger`.  Each level method takes
    the event name plus free-form keyword fields; field values must be
    JSON-encodable (anything else is stringified, never raises).
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _emit(self, level_name: str, level: int, event: str, fields: dict
              ) -> None:
        state = _state
        if state is None or level < state.level:
            return
        record = {
            "ts": _wall_time(),
            "level": level_name,
            "logger": self.name,
            "event": event,
            "pid": _getpid(),
        }
        bound = getattr(_context, "fields", None)
        if bound:
            record.update(bound)
        if fields:
            record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with state.lock:
            state.stream.write(line)
            # Service logs are consumed live (journald, kubectl logs);
            # a crash must not swallow buffered lines.
            flush = getattr(state.stream, "flush", None)
            if flush is not None:
                flush()

    def debug(self, event: str, **fields: object) -> None:
        if _state is None:
            return
        self._emit("debug", 10, event, fields)

    def info(self, event: str, **fields: object) -> None:
        if _state is None:
            return
        self._emit("info", 20, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        if _state is None:
            return
        self._emit("warning", 30, event, fields)

    def error(self, event: str, **fields: object) -> None:
        if _state is None:
            return
        self._emit("error", 40, event, fields)


_loggers: dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """The shared :class:`Logger` named ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger
