"""Spans and the process-wide recorder.

A :class:`Span` is one timed region of the flow -- it carries wall and
CPU durations, free-form attributes (dimensions, outcomes), accumulating
counters (conflicts, sweeps, accepted moves) and child spans.  The
:class:`Recorder` owns the active span stack; it is *disabled* by
default, and every public entry point in :mod:`repro.obs` bails out on
a single attribute check before any object is allocated, so
instrumented code pays (almost) nothing when observability is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One named, timed region with attributes, counters and children."""

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    _start_wall: float = field(default=0.0, repr=False, compare=False)
    _start_cpu: float = field(default=0.0, repr=False, compare=False)

    # --- recording -----------------------------------------------------
    def set(self, key: str, value: object) -> None:
        """Set an attribute (dimension / outcome) on this span."""
        self.attributes[key] = value

    def add(self, name: str, value: float = 1.0) -> None:
        """Accumulate a named counter on this span."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    # --- querying ------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (depth-first)."""
        return [span for span in self.walk() if span.name == name]

    def total(self, counter: str) -> float:
        """Sum of a counter over this span and all descendants."""
        return sum(span.counters.get(counter, 0.0) for span in self.walk())

    # --- (de)serialization ---------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-ready dictionary (drops the private start marks)."""
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Span":
        span = cls(
            name=str(data["name"]),
            attributes=dict(data.get("attributes", {})),  # type: ignore[arg-type]
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            wall_seconds=float(data.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),  # type: ignore[arg-type]
        )
        span.children = [
            cls.from_dict(child)
            for child in data.get("children", [])  # type: ignore[union-attr]
        ]
        return span


class NullSpan:
    """Inert stand-in yielded by ``obs.span(...)`` when recording is off.

    Swallows every mutation so instrumented code never branches on the
    recorder state itself.
    """

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def add(self, name: str, value: float = 1.0) -> None:
        pass


NULL_SPAN = NullSpan()


class Recorder:
    """Process-wide span stack; disabled (and allocation-free) by default."""

    __slots__ = ("enabled", "roots", "counters", "_stack")

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        #: Counters reported outside any open span.
        self.counters: dict[str, float] = {}
        self._stack: list[Span] = []

    def start(self, name: str) -> Span:
        span = Span(name)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span._start_cpu = time.process_time()
        span._start_wall = time.perf_counter()
        return span

    def end(self, span: Span) -> None:
        span.wall_seconds = time.perf_counter() - span._start_wall
        span.cpu_seconds = time.process_time() - span._start_cpu
        # Defensive unwinding: pop until (and including) the span, so a
        # child left open by an exception cannot corrupt the stack.
        while self._stack:
            if self._stack.pop() is span:
                break

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.roots.clear()
        self.counters.clear()
        self._stack.clear()
