"""Spans and the process-wide recorder.

A :class:`Span` is one timed region of the flow -- it carries wall and
CPU durations, free-form attributes (dimensions, outcomes), accumulating
counters (conflicts, sweeps, accepted moves) and child spans.  The
:class:`Recorder` owns the active span stack; it is *disabled* by
default, and every public entry point in :mod:`repro.obs` bails out on
a single attribute check before any object is allocated, so
instrumented code pays (almost) nothing when observability is off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import Histogram


@dataclass
class Span:
    """One named, timed region with attributes, counters and children."""

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    histograms: dict[str, Histogram] = field(default_factory=dict)
    _start_wall: float = field(default=0.0, repr=False, compare=False)
    _start_cpu: float = field(default=0.0, repr=False, compare=False)

    # --- recording -----------------------------------------------------
    def set(self, key: str, value: object) -> None:
        """Set an attribute (dimension / outcome) on this span."""
        self.attributes[key] = value

    def add(self, name: str, value: float = 1.0) -> None:
        """Accumulate a named counter on this span."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a named histogram on this span."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # --- querying ------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (depth-first)."""
        return [span for span in self.walk() if span.name == name]

    def total(self, counter: str) -> float:
        """Sum of a counter over this span and all descendants."""
        return sum(span.counters.get(counter, 0.0) for span in self.walk())

    def histogram_total(self, name: str) -> Histogram:
        """Merged histogram of ``name`` over this span and descendants."""
        merged = Histogram()
        for span in self.walk():
            histogram = span.histograms.get(name)
            if histogram is not None:
                merged.merge(histogram)
        return merged

    # --- (de)serialization ---------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-ready dictionary (drops the private start marks).

        ``histograms`` is emitted only when non-empty, so traces from
        before the histogram metric existed load and diff unchanged.
        """
        data: dict[str, object] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }
        if self.histograms:
            data["histograms"] = {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Span":
        span = cls(
            name=str(data["name"]),
            attributes=dict(data.get("attributes", {})),  # type: ignore[arg-type]
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            wall_seconds=float(data.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),  # type: ignore[arg-type]
        )
        span.children = [
            cls.from_dict(child)
            for child in data.get("children", [])  # type: ignore[union-attr]
        ]
        span.histograms = {
            str(name): Histogram.from_dict(histogram)
            for name, histogram in data.get("histograms", {}).items()  # type: ignore[union-attr]
        }
        return span


class NullSpan:
    """Inert stand-in yielded by ``obs.span(...)`` when recording is off.

    Swallows every mutation so instrumented code never branches on the
    recorder state itself.
    """

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def add(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


NULL_SPAN = NullSpan()


class Recorder:
    """Process-wide recorder with *per-thread* span stacks.

    Disabled (and allocation-free) by default.  The enabled switch is
    process-wide, but each thread tracks its own stack of open spans --
    two threads running the design flow concurrently build two
    independent span trees instead of nesting into each other -- and
    :class:`repro.obs.capture` scopes its force-enable to the capturing
    thread only (a per-thread *override* of the global switch), so one
    thread's capture ending cannot stop a sibling thread's recording
    mid-flight.
    """

    __slots__ = (
        "_enabled",
        "maybe_enabled",
        "roots",
        "counters",
        "_local",
        "_override_lock",
        "_true_overrides",
    )

    def __init__(self) -> None:
        self._enabled = False
        #: Cheap upper bound on :attr:`enabled` for *any* thread: ``False``
        #: guarantees nothing records anywhere, so hot paths bail on this
        #: one plain attribute before paying the thread-local lookup.
        self.maybe_enabled = False
        self.roots: list[Span] = []
        #: Counters reported outside any open span.
        self.counters: dict[str, float] = {}
        self._local = threading.local()
        self._override_lock = threading.Lock()
        self._true_overrides = 0

    @property
    def enabled(self) -> bool:
        """Effective recording state for the *calling thread*."""
        override = getattr(self._local, "override", None)
        return self._enabled if override is None else override

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        with self._override_lock:
            self.maybe_enabled = self._enabled or self._true_overrides > 0

    def override(self) -> bool | None:
        """The calling thread's capture override (``None`` = global)."""
        return getattr(self._local, "override", None)

    def set_override(self, value: bool | None) -> None:
        """Install (or with ``None`` clear) the calling thread's override."""
        previous = getattr(self._local, "override", None)
        self._local.override = value
        if (previous is True) != (value is True):
            with self._override_lock:
                self._true_overrides += 1 if value is True else -1
                self.maybe_enabled = (
                    self._enabled or self._true_overrides > 0
                )

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str) -> Span:
        span = Span(name)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span._start_cpu = time.process_time()
        span._start_wall = time.perf_counter()
        return span

    def end(self, span: Span) -> None:
        now_wall = time.perf_counter()
        now_cpu = time.process_time()
        span.wall_seconds = now_wall - span._start_wall
        span.cpu_seconds = now_cpu - span._start_cpu
        # Defensive unwinding: pop until (and including) the span, so a
        # child left open by an exception cannot corrupt the stack.
        # Ending a span that is not on the stack (already closed) must
        # not unwind anything at all.
        if not any(open_span is span for open_span in self._stack):
            return
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
            # A child left open (exception propagating through its
            # parent's handle) still gets real durations -- zero-time
            # spans would misreport exactly the regions that crashed --
            # and is tagged so consumers know the timing is cut short.
            popped.wall_seconds = now_wall - popped._start_wall
            popped.cpu_seconds = now_cpu - popped._start_cpu
            popped.attributes["truncated"] = True

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop roots and counters; clears the *calling thread's* stack."""
        self.roots.clear()
        self.counters.clear()
        self._stack.clear()
