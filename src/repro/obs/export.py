"""Standard trace exporters: Chrome trace-event JSON and Prometheus text.

:func:`to_chrome_trace` turns any :class:`~repro.obs.core.Span` tree
into the Chrome trace-event format (the JSON that ``chrome://tracing``
and https://ui.perfetto.dev load directly).  Spans only store
durations, not absolute start times -- and worker spans merged from
other processes have no shared timebase at all -- so the exporter lays
the tree out on a synthetic timeline: children run back-to-back inside
their parent, except that spans attributed to different workers (the
``worker`` attribute set by the cross-process merge) are placed on
their own thread track (*tid*) starting at their parent's start, which
renders the fan-out as genuinely parallel lanes.

:func:`to_prometheus` renders the same tree as Prometheus text
exposition (version 0.0.4): counters summed over the tree become
``*_total`` counters, per-name span durations/call counts become
labelled counters, and histograms become summaries with ``quantile``
labels plus ``*_min``/``*_max`` gauges (each its own single-type
family, so strict exposition parsers accept the payload).  Every
family carries both ``# HELP`` and ``# TYPE`` lines and label values
are fully escaped.  Output ordering is deterministic so snapshots
diff cleanly.

The building blocks are public: :class:`SpanAggregate` folds any
number of span trees into name-keyed totals (the service uses it to
keep metrics for evicted jobs without retaining their spans), and
:class:`Exposition` assembles conformant text exposition from
families and samples (the service's HTTP metrics render through it).
"""

from __future__ import annotations

import json
import re

from repro.obs.core import Span
from repro.obs.metrics import DEFAULT_QUANTILES, Histogram

#: The pid all spans are filed under (one logical trace per export).
_CHROME_PID = 1

#: The tid of spans not attributed to any worker.
_CHROME_MAIN_TID = 1


def _chrome_args(span: Span) -> dict[str, object]:
    args: dict[str, object] = dict(span.attributes)
    args.update(span.counters)
    for name, histogram in span.histograms.items():
        args[f"{name}.count"] = histogram.count
        args[f"{name}.mean"] = histogram.mean
    return args


def to_chrome_trace(span: Span, time_unit: str = "ms") -> str:
    """One span tree as Chrome trace-event JSON (Perfetto-loadable)."""
    events: list[dict[str, object]] = []
    worker_tids: dict[object, int] = {}

    def tid_for(worker: object) -> int:
        if worker not in worker_tids:
            worker_tids[worker] = _CHROME_MAIN_TID + 1 + len(worker_tids)
        return worker_tids[worker]

    def emit(node: Span, start_us: float, tid: int) -> float:
        """Emit ``node`` at ``start_us``; returns its duration in us."""
        duration_us = node.wall_seconds * 1e6
        events.append(
            {
                "name": node.name,
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(duration_us, 3),
                "pid": _CHROME_PID,
                "tid": tid,
                "cat": "repro",
                "args": _chrome_args(node),
            }
        )
        cursor = start_us
        for child in node.children:
            worker = child.attributes.get("worker")
            if worker is not None:
                # Parallel lane: the worker's subtree starts with its
                # parent instead of queueing behind its siblings.
                emit(child, start_us, tid_for(worker))
            else:
                cursor += emit(child, cursor, tid)
        return duration_us

    emit(span, 0.0, _CHROME_MAIN_TID)

    metadata: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _CHROME_PID,
            "tid": _CHROME_MAIN_TID,
            "args": {"name": f"repro trace: {span.name}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _CHROME_PID,
            "tid": _CHROME_MAIN_TID,
            "args": {"name": "main"},
        },
    ]
    for worker, tid in sorted(worker_tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _CHROME_PID,
                "tid": tid,
                "args": {"name": f"worker {worker}"},
            }
        )
    document = {
        "traceEvents": metadata + events,
        "displayTimeUnit": time_unit,
    }
    return json.dumps(document, indent=2, sort_keys=True)


# --- Prometheus text exposition ------------------------------------------

_METRIC_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    return _METRIC_SANITIZE.sub("_", f"{prefix}_{name}")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    # Exposition format 0.0.4: label values escape backslash, double
    # quote and line feed (in that order, backslash first).
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    # HELP text escapes only backslash and line feed.
    return value.replace("\\", "\\\\").replace("\n", "\\n")


class Exposition:
    """Builder for Prometheus text exposition (format 0.0.4).

    One :meth:`family` call per metric family emits the ``# HELP`` and
    ``# TYPE`` header pair followed by that family's samples, keeping
    each family single-typed and contiguous -- the two properties
    strict exposition parsers enforce.  Values and label values are
    formatted/escaped centrally.
    """

    __slots__ = ("_lines",)

    def __init__(self) -> None:
        self._lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        """Start a metric family (``kind`` is counter/gauge/summary)."""
        self._lines.append(f"# HELP {name} {_escape_help(help_text)}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value: float, **labels: object) -> None:
        """One sample line (``name`` may carry a ``_sum``-style suffix)."""
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in labels.items()
            )
            self._lines.append(
                f"{name}{{{rendered}}} {_format_value(value)}"
            )
        else:
            self._lines.append(f"{name} {_format_value(value)}")

    def summary(
        self, name: str, histogram: Histogram, help_text: str,
        **labels: object,
    ) -> None:
        """A full summary family from one histogram: ``quantile``
        series plus ``_sum``/``_count``, and -- when non-empty --
        companion ``_min``/``_max`` gauge families (separate families,
        not extra samples of the summary, which would be invalid)."""
        self.family(name, "summary", help_text)
        for q, value in histogram.quantiles(DEFAULT_QUANTILES).items():
            self.sample(name, value, **labels, quantile=f"{q:g}")
        self.sample(f"{name}_sum", histogram.sum, **labels)
        self.sample(f"{name}_count", histogram.count, **labels)
        if histogram.count:
            self.family(f"{name}_min", "gauge", f"Minimum of {name}.")
            self.sample(f"{name}_min", histogram.min, **labels)
            self.family(f"{name}_max", "gauge", f"Maximum of {name}.")
            self.sample(f"{name}_max", histogram.max, **labels)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


class SpanAggregate:
    """Name-keyed totals folded from any number of span trees.

    :meth:`update` walks one tree and accumulates counters, per-span-
    name wall/CPU seconds and call counts, and merged histograms.  The
    service scheduler folds evicted jobs' spans in here so ``/v1/
    metrics`` stays lossless while span retention stays bounded.
    """

    __slots__ = ("counters", "span_wall", "span_cpu", "span_calls",
                 "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.span_wall: dict[str, float] = {}
        self.span_cpu: dict[str, float] = {}
        self.span_calls: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    def update(self, span: Span) -> "SpanAggregate":
        for node in span.walk():
            for name, value in node.counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            self.span_wall[node.name] = (
                self.span_wall.get(node.name, 0.0) + node.wall_seconds
            )
            self.span_cpu[node.name] = (
                self.span_cpu.get(node.name, 0.0) + node.cpu_seconds
            )
            self.span_calls[node.name] = (
                self.span_calls.get(node.name, 0) + 1
            )
            for name, histogram in node.histograms.items():
                merged = self.histograms.get(name)
                if merged is None:
                    merged = self.histograms[name] = Histogram()
                merged.merge(histogram)
        return self

    def merge(self, other: "SpanAggregate") -> "SpanAggregate":
        """Fold another aggregate's totals into this one."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in other.span_wall.items():
            self.span_wall[name] = self.span_wall.get(name, 0.0) + value
        for name, value in other.span_cpu.items():
            self.span_cpu[name] = self.span_cpu.get(name, 0.0) + value
        for name, value in other.span_calls.items():
            self.span_calls[name] = self.span_calls.get(name, 0) + value
        for name, histogram in other.histograms.items():
            merged = self.histograms.get(name)
            if merged is None:
                merged = self.histograms[name] = Histogram()
            merged.merge(histogram)
        return self

    def render_into(self, exposition: Exposition, prefix: str) -> None:
        """Emit this aggregate's families into ``exposition``."""
        for name in sorted(self.counters):
            metric = _metric_name(name, prefix) + "_total"
            exposition.family(
                metric, "counter", f"Accumulated {name} over all spans."
            )
            exposition.sample(metric, self.counters[name])

        wall_metric = f"{prefix}_span_wall_seconds_total"
        exposition.family(
            wall_metric, "counter", "Wall-clock seconds spent per span name."
        )
        for name in sorted(self.span_wall):
            exposition.sample(wall_metric, self.span_wall[name], span=name)
        cpu_metric = f"{prefix}_span_cpu_seconds_total"
        exposition.family(
            cpu_metric, "counter", "CPU seconds spent per span name."
        )
        for name in sorted(self.span_cpu):
            exposition.sample(cpu_metric, self.span_cpu[name], span=name)
        calls_metric = f"{prefix}_span_calls_total"
        exposition.family(
            calls_metric, "counter", "Times each span name was entered."
        )
        for name in sorted(self.span_calls):
            exposition.sample(calls_metric, self.span_calls[name], span=name)

        for name in sorted(self.histograms):
            metric = _metric_name(name, prefix)
            exposition.summary(
                metric,
                self.histograms[name],
                f"Distribution of {name} observations.",
            )


def to_prometheus(span: Span, prefix: str = "repro") -> str:
    """One span tree as Prometheus text exposition.

    Counters aggregate over the whole tree by name; span wall/CPU
    seconds and call counts aggregate by span name into labelled
    series; histograms aggregate by name into summaries.
    """
    exposition = Exposition()
    SpanAggregate().update(span).render_into(exposition, prefix)
    return exposition.render()
