"""Standard trace exporters: Chrome trace-event JSON and Prometheus text.

:func:`to_chrome_trace` turns any :class:`~repro.obs.core.Span` tree
into the Chrome trace-event format (the JSON that ``chrome://tracing``
and https://ui.perfetto.dev load directly).  Spans only store
durations, not absolute start times -- and worker spans merged from
other processes have no shared timebase at all -- so the exporter lays
the tree out on a synthetic timeline: children run back-to-back inside
their parent, except that spans attributed to different workers (the
``worker`` attribute set by the cross-process merge) are placed on
their own thread track (*tid*) starting at their parent's start, which
renders the fan-out as genuinely parallel lanes.

:func:`to_prometheus` renders the same tree as Prometheus text
exposition (version 0.0.4): counters summed over the tree become
``*_total`` counters, per-name span durations/call counts become
labelled counters, and histograms become summaries with ``quantile``
labels plus ``*_min``/``*_max`` gauges.  Output ordering is
deterministic so snapshots diff cleanly.
"""

from __future__ import annotations

import json
import re

from repro.obs.core import Span
from repro.obs.metrics import DEFAULT_QUANTILES, Histogram

#: The pid all spans are filed under (one logical trace per export).
_CHROME_PID = 1

#: The tid of spans not attributed to any worker.
_CHROME_MAIN_TID = 1


def _chrome_args(span: Span) -> dict[str, object]:
    args: dict[str, object] = dict(span.attributes)
    args.update(span.counters)
    for name, histogram in span.histograms.items():
        args[f"{name}.count"] = histogram.count
        args[f"{name}.mean"] = histogram.mean
    return args


def to_chrome_trace(span: Span, time_unit: str = "ms") -> str:
    """One span tree as Chrome trace-event JSON (Perfetto-loadable)."""
    events: list[dict[str, object]] = []
    worker_tids: dict[object, int] = {}

    def tid_for(worker: object) -> int:
        if worker not in worker_tids:
            worker_tids[worker] = _CHROME_MAIN_TID + 1 + len(worker_tids)
        return worker_tids[worker]

    def emit(node: Span, start_us: float, tid: int) -> float:
        """Emit ``node`` at ``start_us``; returns its duration in us."""
        duration_us = node.wall_seconds * 1e6
        events.append(
            {
                "name": node.name,
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(duration_us, 3),
                "pid": _CHROME_PID,
                "tid": tid,
                "cat": "repro",
                "args": _chrome_args(node),
            }
        )
        cursor = start_us
        for child in node.children:
            worker = child.attributes.get("worker")
            if worker is not None:
                # Parallel lane: the worker's subtree starts with its
                # parent instead of queueing behind its siblings.
                emit(child, start_us, tid_for(worker))
            else:
                cursor += emit(child, cursor, tid)
        return duration_us

    emit(span, 0.0, _CHROME_MAIN_TID)

    metadata: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _CHROME_PID,
            "tid": _CHROME_MAIN_TID,
            "args": {"name": f"repro trace: {span.name}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _CHROME_PID,
            "tid": _CHROME_MAIN_TID,
            "args": {"name": "main"},
        },
    ]
    for worker, tid in sorted(worker_tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _CHROME_PID,
                "tid": tid,
                "args": {"name": f"worker {worker}"},
            }
        )
    document = {
        "traceEvents": metadata + events,
        "displayTimeUnit": time_unit,
    }
    return json.dumps(document, indent=2, sort_keys=True)


# --- Prometheus text exposition ------------------------------------------

_METRIC_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    return _METRIC_SANITIZE.sub("_", f"{prefix}_{name}")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def to_prometheus(span: Span, prefix: str = "repro") -> str:
    """One span tree as Prometheus text exposition.

    Counters aggregate over the whole tree by name; span wall/CPU
    seconds and call counts aggregate by span name into labelled
    series; histograms aggregate by name into summaries.
    """
    counters: dict[str, float] = {}
    span_wall: dict[str, float] = {}
    span_cpu: dict[str, float] = {}
    span_calls: dict[str, int] = {}
    histograms: dict[str, Histogram] = {}
    for node in span.walk():
        for name, value in node.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        span_wall[node.name] = span_wall.get(node.name, 0.0) + node.wall_seconds
        span_cpu[node.name] = span_cpu.get(node.name, 0.0) + node.cpu_seconds
        span_calls[node.name] = span_calls.get(node.name, 0) + 1
        for name, histogram in node.histograms.items():
            merged = histograms.get(name)
            if merged is None:
                merged = histograms[name] = Histogram()
            merged.merge(histogram)

    lines: list[str] = []

    def series(metric: str, value: float, **labels: object) -> str:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in labels.items()
            )
            return f"{metric}{{{rendered}}} {_format_value(value)}"
        return f"{metric} {_format_value(value)}"

    for name in sorted(counters):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(series(metric, counters[name]))

    wall_metric = f"{prefix}_span_wall_seconds_total"
    cpu_metric = f"{prefix}_span_cpu_seconds_total"
    calls_metric = f"{prefix}_span_calls_total"
    lines.append(f"# TYPE {wall_metric} counter")
    for name in sorted(span_wall):
        lines.append(series(wall_metric, span_wall[name], span=name))
    lines.append(f"# TYPE {cpu_metric} counter")
    for name in sorted(span_cpu):
        lines.append(series(cpu_metric, span_cpu[name], span=name))
    lines.append(f"# TYPE {calls_metric} counter")
    for name in sorted(span_calls):
        lines.append(series(calls_metric, span_calls[name], span=name))

    for name in sorted(histograms):
        histogram = histograms[name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for q, value in histogram.quantiles(DEFAULT_QUANTILES).items():
            lines.append(series(metric, value, quantile=f"{q:g}"))
        lines.append(series(f"{metric}_sum", histogram.sum))
        lines.append(series(f"{metric}_count", histogram.count))
        if histogram.count:
            lines.append(f"# TYPE {metric}_min gauge")
            lines.append(series(f"{metric}_min", histogram.min))
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(series(f"{metric}_max", histogram.max))
    return "\n".join(lines) + "\n"
