"""Flight-recorder events and live progress reporting.

Two complementary signals for long runs:

* :class:`EventRing` is a bounded flight recorder: ``obs.event(...)``
  appends a timestamped :class:`Event` and the oldest entries fall off
  once the ring is full, so a multi-hour sweep can always answer "what
  were the last N things that happened" without unbounded memory.
* :class:`ProgressReporter` is the callback protocol behind
  ``obs.progress(...)``: instrumented loops (SAT restarts, exact-P&R
  candidates, SimAnneal sweep batches, operational-domain grid points,
  parallel task fan-outs) report ``(stage, current, total)`` ticks and
  an installed reporter turns them into a live display.
  :class:`LineProgressReporter` is the CLI's single-line ``\\r``
  renderer (``repro synth ... --progress``).

Both are off by default and cost one attribute check per call site
when off, preserving the 2% disabled-overhead gate.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Protocol, TextIO, runtime_checkable

#: Default flight-recorder capacity (events, not bytes).
DEFAULT_EVENT_CAPACITY = 1024


@dataclass(frozen=True)
class Event:
    """One flight-recorder entry."""

    name: str
    #: ``time.perf_counter()`` timestamp (process-local timebase).
    timestamp: float
    attributes: dict[str, object] = field(default_factory=dict)


class EventRing:
    """Fixed-capacity append-only ring; the oldest events drop first.

    Appends and reads are thread-safe (the service's HTTP handler
    threads write while ``/v1/events`` streams), and every append gets a
    monotonically increasing :attr:`sequence` number so a streaming
    reader can resume from a cursor with :meth:`since` and detect how
    many events it missed.
    """

    __slots__ = ("capacity", "_entries", "_next", "dropped", "sequence",
                 "_lock")

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: list[Event] = []
        self._next = 0
        #: Events discarded so far to stay within capacity.
        self.dropped = 0
        #: Total events ever appended (never decreases, survives drops).
        self.sequence = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, event: Event) -> None:
        with self._lock:
            self.sequence += 1
            if len(self._entries) < self.capacity:
                self._entries.append(event)
                return
            self._entries[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def snapshot(self) -> list[Event]:
        """The retained events, oldest first."""
        with self._lock:
            return (
                self._entries[self._next:] + self._entries[: self._next]
            )

    def since(self, cursor: int) -> tuple[list[Event], int]:
        """Events appended after sequence number ``cursor``.

        Returns ``(events, new_cursor)`` where ``new_cursor`` is the
        ring's current :attr:`sequence` -- pass it back on the next call
        to stream without duplicates.  Events that fell off the ring
        between calls are simply absent (drop-oldest); a cursor from a
        different (e.g. since-replaced) ring that lies beyond the
        current sequence is treated as 0 so readers recover instead of
        stalling forever.
        """
        with self._lock:
            if cursor > self.sequence or cursor < 0:
                cursor = 0
            missed = self.sequence - cursor
            if missed <= 0:
                return [], self.sequence
            ordered = (
                self._entries[self._next:] + self._entries[: self._next]
            )
            return ordered[-missed:] if missed < len(ordered) else ordered, \
                self.sequence

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._next = 0
            self.dropped = 0


@runtime_checkable
class ProgressReporter(Protocol):
    """Callback protocol for live progress ticks.

    ``current`` counts completed units of ``stage``; ``total`` is the
    known unit count or ``None`` for open-ended stages (e.g. SAT
    restarts).  ``info`` carries small free-form context such as the
    candidate dimensions currently being tried.
    """

    def update(
        self,
        stage: str,
        current: int,
        total: int | None = None,
        **info: object,
    ) -> None:  # pragma: no cover - protocol signature only
        ...


class LineProgressReporter:
    """Single-line ``\\r`` progress rendering for terminals.

    Re-renders at most every ``min_interval`` seconds (final ticks of a
    stage always render), pads with spaces so a shorter line fully
    overwrites a longer one, and :meth:`finish` clears the line so the
    next regular print starts clean.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        min_interval: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.updates = 0
        # -inf, not 0.0: time.monotonic() starts near zero on a freshly
        # booted machine, and 0.0 would throttle the very first update
        # whenever uptime < min_interval.
        self._last_render = float("-inf")
        self._last_width = 0

    def update(
        self,
        stage: str,
        current: int,
        total: int | None = None,
        **info: object,
    ) -> None:
        self.updates += 1
        now = time.monotonic()
        final = total is not None and current >= total
        if not final and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        if total is not None:
            text = f"{stage} {current}/{total}"
        else:
            text = f"{stage} {current}"
        if info:
            details = ", ".join(f"{k}={v}" for k, v in info.items())
            text = f"{text} ({details})"
        padding = " " * max(0, self._last_width - len(text))
        self._last_width = len(text)
        self.stream.write(f"\r{text}{padding}")
        self.stream.flush()

    def finish(self) -> None:
        """Clear the progress line (call once after the tracked work)."""
        if self._last_width:
            self.stream.write("\r" + " " * self._last_width + "\r")
            self.stream.flush()
            self._last_width = 0
