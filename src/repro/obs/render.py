"""Trace export: human-readable tree rendering and JSON round-trip."""

from __future__ import annotations

import json

from repro.obs.core import Span


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _format_mapping(mapping: dict[str, object]) -> str:
    return ", ".join(
        f"{key}={_format_value(value)}" for key, value in mapping.items()
    )


def render_tree(span: Span, unicode_art: bool = True) -> str:
    """A fiction/SiQAD-style statistics tree of one trace.

    Each line shows the span name, wall and CPU time, attributes in
    ``[...]`` and counters in ``{...}``::

        design_flow  wall 2.31 s  cpu 2.30 s
        |- place_route  wall 1.90 s  cpu 1.90 s
        |  |- exact.candidate  wall 0.41 s ...  [width=4, height=7]
    """
    tee, elbow, pipe, space = (
        ("├─ ", "└─ ", "│  ", "   ") if unicode_art else ("|- ", "`- ", "|  ", "   ")
    )
    lines: list[str] = []

    def emit(node: Span, prefix: str, connector: str, child_prefix: str) -> None:
        parts = [
            f"{prefix}{connector}{node.name}",
            f"wall {node.wall_seconds * 1000.0:.2f} ms",
            f"cpu {node.cpu_seconds * 1000.0:.2f} ms",
        ]
        if node.attributes:
            parts.append(f"[{_format_mapping(node.attributes)}]")
        if node.counters:
            parts.append(f"{{{_format_mapping(node.counters)}}}")
        if node.histograms:
            rendered = ", ".join(
                f"{name}: n={h.count} mean={_format_value(h.mean)} "
                f"p50={_format_value(h.quantile(0.5))}"
                for name, h in node.histograms.items()
            )
            parts.append(f"<{rendered}>")
        lines.append("  ".join(parts))
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            emit(
                child,
                prefix + child_prefix,
                elbow if last else tee,
                space if last else pipe,
            )

    emit(span, "", "", "")
    return "\n".join(lines)


def trace_to_json(span: Span, indent: int | None = 2) -> str:
    """Serialize one trace tree to JSON."""
    return json.dumps(span.to_dict(), indent=indent, sort_keys=True)


def trace_from_json(text: str) -> Span:
    """Rebuild a trace tree from :func:`trace_to_json` output."""
    return Span.from_dict(json.loads(text))
