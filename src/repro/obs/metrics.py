"""Histogram metric: bounded-memory value distributions.

Counters answer "how many"; a :class:`Histogram` answers "how big" --
per-candidate CNF sizes, per-gate anneal energies, per-tile recheck
times.  It keeps exact ``count``/``sum``/``min``/``max`` plus a
bounded, deterministic sample set for quantile estimates: every
``stride``-th observation is retained, and when the retained set
reaches capacity the stride doubles and every other sample is dropped.
No randomness, no clock reads -- two identical observation streams
always produce identical histograms, which keeps cross-process merges
and golden-snapshot tests reproducible.
"""

from __future__ import annotations

#: Quantiles reported by :meth:`Histogram.quantiles` and the Prometheus
#: exporter (summary ``quantile`` labels).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class Histogram:
    """Count/sum/min/max plus fixed quantile estimates, bounded memory."""

    __slots__ = (
        "count", "sum", "min", "max", "samples", "stride", "_seen",
        "_max_samples",
    )

    def __init__(self, max_samples: int = 512) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: Retained observations; each represents ``stride`` real ones.
        self.samples: list[float] = []
        self.stride = 1
        self._seen = 0
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._seen % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) >= self._max_samples:
                self.samples = self.samples[::2]
                self.stride *= 2
        self._seen += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate from the retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def quantiles(
        self, qs: tuple[float, ...] = DEFAULT_QUANTILES
    ) -> dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (e.g. from a worker process) into this.

        Exact for count/sum/min/max; the sample sets concatenate and
        re-decimate, so quantile estimates stay bounded and reasonable.
        """
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.samples.extend(other.samples)
        while len(self.samples) >= self._max_samples:
            self.samples = self.samples[::2]
            self.stride *= 2
        self._seen = len(self.samples) * self.stride

    # --- (de)serialization ---------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-ready dictionary, including the retained samples so a
        deserialized histogram can still merge and estimate quantiles."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "stride": self.stride,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Histogram":
        histogram = cls()
        histogram.count = int(data.get("count", 0))  # type: ignore[arg-type]
        histogram.sum = float(data.get("sum", 0.0))  # type: ignore[arg-type]
        minimum = data.get("min")
        maximum = data.get("max")
        histogram.min = float("inf") if minimum is None else float(minimum)  # type: ignore[arg-type]
        histogram.max = float("-inf") if maximum is None else float(maximum)  # type: ignore[arg-type]
        histogram.stride = int(data.get("stride", 1))  # type: ignore[arg-type]
        histogram.samples = [
            float(v) for v in data.get("samples", [])  # type: ignore[union-attr]
        ]
        histogram._seen = len(histogram.samples) * histogram.stride
        return histogram

    # --- comparison / repr ---------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.count == other.count
            and self.sum == other.sum
            and self.min == other.min
            and self.max == other.max
            and self.stride == other.stride
            and self.samples == other.samples
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(count={self.count}, mean={self.mean:.4g}, "
            f"min={self.min:.4g}, max={self.max:.4g})"
        )
