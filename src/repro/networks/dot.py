"""Graphviz DOT export for logic networks and XAGs."""

from __future__ import annotations

from repro.networks.logic_network import GateType, LogicNetwork
from repro.networks.xag import Xag, XagNodeKind, is_complemented, signal_node


def xag_to_dot(xag: Xag) -> str:
    """Render an XAG as a DOT digraph; dashed edges are complemented."""
    lines = [f'digraph "{xag.name}" {{', "  rankdir=TB;"]
    for index, pi in enumerate(xag.pis()):
        label = xag.pi_name(pi) or f"pi{index}"
        lines.append(f'  n{pi} [shape=triangle, label="{label}"];')
    for node in xag.gates():
        shape = "box" if xag.kind(node) is XagNodeKind.AND else "diamond"
        label = "AND" if xag.kind(node) is XagNodeKind.AND else "XOR"
        lines.append(f'  n{node} [shape={shape}, label="{label}"];')
        for fanin in xag.fanins(node):
            style = ", style=dashed" if is_complemented(fanin) else ""
            lines.append(f"  n{signal_node(fanin)} -> n{node} [dir=none{style}];")
    for index, po in enumerate(xag.pos()):
        label = xag.po_name(index) or f"po{index}"
        lines.append(f'  o{index} [shape=invtriangle, label="{label}"];')
        style = ", style=dashed" if is_complemented(po) else ""
        lines.append(f"  n{signal_node(po)} -> o{index} [dir=none{style}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def network_to_dot(network: LogicNetwork) -> str:
    """Render a technology network as a DOT digraph."""
    shapes = {
        GateType.PI: "triangle",
        GateType.PO: "invtriangle",
        GateType.FANOUT: "point",
        GateType.INV: "invhouse",
    }
    lines = [f'digraph "{network.name}" {{', "  rankdir=TB;"]
    for node in network.nodes():
        gate_type = network.gate_type(node)
        shape = shapes.get(gate_type, "box")
        label = network.node_name(node) or gate_type.value.upper()
        lines.append(f'  n{node} [shape={shape}, label="{label}"];')
        for fanin in network.fanins(node):
            lines.append(f"  n{fanin} -> n{node};")
    lines.append("}")
    return "\n".join(lines) + "\n"
