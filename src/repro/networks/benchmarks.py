"""The benchmark suite of the paper's evaluation (Table 1).

The paper generates layouts for "established QCA benchmarks from
[Trindade'16, Fontes'18]"; ``c17`` originates from ISCAS-85.  The original
netlists ship as Verilog with the fiction framework; here they are
re-created from their published names and I/O signatures:

* functions that are fully determined by their name (xor2, xnor2, par_gen,
  par_check, mux21, xor5, majority, majority_5, c17, the 1-bit adders,
  cm82a as a 2-stage ripple adder, clpl as a carry-lookahead propagate
  chain) are implemented exactly;
* ``t``, ``t_5``, ``b1_r2`` and ``newtag`` are small control-logic PLAs
  whose exact cubes are not given in the papers; we implement
  representative functions with the correct I/O counts and comparable
  gate counts and note this substitution in EXPERIMENTS.md.

All builders return structurally hashed XAGs;
:func:`benchmark_verilog` serializes them so the full flow can be
exercised end-to-end from a Verilog specification (flow step 1).
"""

from __future__ import annotations

from typing import Callable

from repro.networks.verilog import write_verilog
from repro.networks.xag import Signal, Xag


def _at_least(xag: Xag, k: int, variables: list[Signal]) -> Signal:
    """Threshold function: true iff at least ``k`` of the inputs are true."""
    if k <= 0:
        return xag.get_constant(True)
    if k > len(variables):
        return xag.get_constant(False)
    head, rest = variables[0], variables[1:]
    with_head = _at_least(xag, k - 1, rest)
    without_head = _at_least(xag, k, rest)
    return xag.create_ite(head, with_head, without_head)


def _xor2() -> Xag:
    xag = Xag("xor2")
    a, b = xag.create_pi("a"), xag.create_pi("b")
    xag.create_po(xag.create_xor(a, b), "f")
    return xag


def _xnor2() -> Xag:
    xag = Xag("xnor2")
    a, b = xag.create_pi("a"), xag.create_pi("b")
    xag.create_po(xag.create_xnor(a, b), "f")
    return xag


def _par_gen() -> Xag:
    """3-bit even-parity generator."""
    xag = Xag("par_gen")
    a, b, c = (xag.create_pi(n) for n in "abc")
    xag.create_po(xag.create_xor(xag.create_xor(a, b), c), "parity")
    return xag


def _par_check() -> Xag:
    """Parity check of 3 data bits plus a parity bit."""
    xag = Xag("par_check")
    a, b, c, p = (xag.create_pi(n) for n in ("a", "b", "c", "p"))
    parity = xag.create_xor(xag.create_xor(a, b), c)
    xag.create_po(xag.create_xor(parity, p), "error")
    return xag


def _mux21() -> Xag:
    xag = Xag("mux21")
    in0, in1, sel = (
        xag.create_pi("in0"),
        xag.create_pi("in1"),
        xag.create_pi("sel"),
    )
    xag.create_po(xag.create_ite(sel, in1, in0), "f")
    return xag


def _xor5_r1() -> Xag:
    xag = Xag("xor5_r1")
    signal = xag.get_constant(False)
    for name in "abcde":
        signal = xag.create_xor(signal, xag.create_pi(name))
    xag.create_po(signal, "f")
    return xag


def _xor5_majority() -> Xag:
    """5-input parity as realized via majority-style decomposition.

    The Fontes'18 variant implements the same Boolean function as
    ``xor5_r1`` but with a different (majority-gate oriented) structure;
    after XAG construction both reduce to parity.
    """
    xag = Xag("xor5_majority")
    pis = [xag.create_pi(n) for n in "abcde"]
    left = xag.create_xor(pis[0], pis[1])
    right = xag.create_xor(pis[2], pis[3])
    pair = xag.create_xor(left, right)
    xag.create_po(xag.create_xor(pair, pis[4]), "f")
    return xag


def _majority() -> Xag:
    xag = Xag("majority")
    a, b, c = (xag.create_pi(n) for n in "abc")
    xag.create_po(xag.create_maj(a, b, c), "f")
    return xag


def _majority_5_r1() -> Xag:
    xag = Xag("majority_5_r1")
    pis = [xag.create_pi(n) for n in "abcde"]
    xag.create_po(_at_least(xag, 3, pis), "f")
    return xag


def _c17() -> Xag:
    """ISCAS-85 c17, netlist taken verbatim from the original BENCH file."""
    xag = Xag("c17")
    in1 = xag.create_pi("1")
    in2 = xag.create_pi("2")
    in3 = xag.create_pi("3")
    in6 = xag.create_pi("6")
    in7 = xag.create_pi("7")
    n10 = xag.create_nand(in1, in3)
    n11 = xag.create_nand(in3, in6)
    n16 = xag.create_nand(in2, n11)
    n19 = xag.create_nand(n11, in7)
    xag.create_po(xag.create_nand(n10, n16), "22")
    xag.create_po(xag.create_nand(n16, n19), "23")
    return xag


def _cm82a_5() -> Xag:
    """cm82a: a 2-digit ripple adder slice (5 inputs, 3 outputs)."""
    xag = Xag("cm82a_5")
    a, b, c, d, e = (xag.create_pi(n) for n in "abcde")
    sum0 = xag.create_xor(xag.create_xor(a, b), c)
    carry0 = xag.create_maj(a, b, c)
    sum1 = xag.create_xor(xag.create_xor(carry0, d), e)
    carry1 = xag.create_maj(carry0, d, e)
    xag.create_po(sum0, "f")
    xag.create_po(sum1, "g")
    xag.create_po(carry1, "h")
    return xag


def _t() -> Xag:
    """Reconstruction of Fontes'18 't' (5 inputs, 2 outputs)."""
    xag = Xag("t")
    a, b, c, d, e = (xag.create_pi(n) for n in "abcde")
    shared = xag.create_or(c, d)
    o1 = xag.create_xor(xag.create_and(a, b), shared)
    o2 = xag.create_and(shared, xag.create_xor(e, a))
    xag.create_po(o1, "o1")
    xag.create_po(o2, "o2")
    return xag


def _t_5() -> Xag:
    """Reconstruction of Fontes'18 't_5' (5 inputs, 2 outputs)."""
    xag = Xag("t_5")
    a, b, c, d, e = (xag.create_pi(n) for n in "abcde")
    shared = xag.create_and(xag.create_or(a, b), c)
    o1 = xag.create_xor(shared, xag.create_and(d, e))
    o2 = xag.create_or(xag.create_xor(shared, d), xag.create_and(b, e))
    xag.create_po(o1, "o1")
    xag.create_po(o2, "o2")
    return xag


def _newtag() -> Xag:
    """Reconstruction of MCNC 'newtag' (8 inputs, 1 output)."""
    xag = Xag("newtag")
    a, b, c, d, e, f, g, h = (xag.create_pi(n) for n in "abcdefgh")
    cube1 = xag.create_and(xag.create_and(a, b), xag.create_not(c))
    cube2 = xag.create_and(xag.create_and(xag.create_not(d), e), f)
    cube3 = xag.create_and(g, h)
    xag.create_po(xag.create_or(xag.create_or(cube1, cube2), cube3), "f")
    return xag


def _b1_r2() -> Xag:
    """Reconstruction of MCNC 'b1' (3 inputs, 4 outputs)."""
    xag = Xag("b1_r2")
    a, b, c = (xag.create_pi(n) for n in "abc")
    xag.create_po(xag.create_nor(a, b), "o0")
    xag.create_po(xag.create_xor(a, b), "o1")
    xag.create_po(xag.create_and(a, c), "o2")
    xag.create_po(xag.create_or(b, xag.create_not(c)), "o3")
    return xag


def _clpl() -> Xag:
    """Carry-lookahead propagate logic: c_{i+1} = g_i | (p_i & c_i)."""
    xag = Xag("clpl")
    carry = xag.create_pi("c0")
    for stage in range(5):
        propagate = xag.create_pi(f"p{stage}")
        generate = xag.create_pi(f"g{stage}")
        carry = xag.create_or(generate, xag.create_and(propagate, carry))
        xag.create_po(carry, f"c{stage + 1}")
    return xag


def _one_bit_adder_aoig() -> Xag:
    """Full adder in AND-OR-inverter structure."""
    xag = Xag("1bitAdderAOIG")
    a, b, cin = (xag.create_pi(n) for n in ("a", "b", "cin"))
    axb = xag.create_xor(a, b)
    xag.create_po(xag.create_xor(axb, cin), "sum")
    cout = xag.create_or(xag.create_and(a, b), xag.create_and(axb, cin))
    xag.create_po(cout, "cout")
    return xag


def _one_bit_adder_maj() -> Xag:
    """Full adder in majority structure (same functions, different shape)."""
    xag = Xag("1bitAdderMaj")
    a, b, cin = (xag.create_pi(n) for n in ("a", "b", "cin"))
    cout = xag.create_maj(a, b, cin)
    xag.create_po(xag.create_xor(xag.create_xor(a, b), cin), "sum")
    xag.create_po(cout, "cout")
    return xag


_BUILDERS: dict[str, Callable[[], Xag]] = {
    "xor2": _xor2,
    "xnor2": _xnor2,
    "par_gen": _par_gen,
    "mux21": _mux21,
    "par_check": _par_check,
    "xor5_r1": _xor5_r1,
    "xor5_majority": _xor5_majority,
    "t": _t,
    "t_5": _t_5,
    "c17": _c17,
    "majority": _majority,
    "majority_5_r1": _majority_5_r1,
    "cm82a_5": _cm82a_5,
    "newtag": _newtag,
    "b1_r2": _b1_r2,
    "clpl": _clpl,
    "1bitAdderAOIG": _one_bit_adder_aoig,
    "1bitAdderMaj": _one_bit_adder_maj,
}

TRINDADE16_NAMES = ("xor2", "xnor2", "par_gen", "mux21", "par_check")
FONTES18_NAMES = (
    "xor5_r1",
    "xor5_majority",
    "t",
    "t_5",
    "c17",
    "majority",
    "majority_5_r1",
    "cm82a_5",
    "newtag",
)
BENCHMARK_NAMES = tuple(_BUILDERS)
TABLE1_NAMES = TRINDADE16_NAMES + FONTES18_NAMES


def benchmark_network(name: str) -> Xag:
    """Build the named benchmark as an XAG."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_BUILDERS)}"
        )
    return _BUILDERS[name]()


def benchmark_verilog(name: str) -> str:
    """The named benchmark as a gate-level Verilog specification."""
    return write_verilog(benchmark_network(name))
