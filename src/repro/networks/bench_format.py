"""ISCAS BENCH format reader and writer.

BENCH is the classic netlist format of the ISCAS benchmark suites (the
``c17`` circuit of Table 1 was originally published in this form).
Supported operators: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF with
arbitrary arity where associative.
"""

from __future__ import annotations

import re

from repro.networks.xag import Signal, Xag, is_complemented, signal_node, XagNodeKind


class BenchError(ValueError):
    """Raised on malformed BENCH input."""


_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]]+)\s*=\s*(?P<op>\w+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([\w.\[\]]+)\s*\)\s*$", re.I)


def parse_bench(text: str, name: str = "bench") -> Xag:
    """Parse a BENCH netlist into an XAG."""
    inputs: list[str] = []
    outputs: list[str] = []
    definitions: dict[str, tuple[str, list[str]]] = {}

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, net = io_match.group(1).upper(), io_match.group(2)
            (inputs if keyword == "INPUT" else outputs).append(net)
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise BenchError(f"cannot parse line: {raw_line!r}")
        args = [a.strip() for a in gate_match.group("args").split(",") if a.strip()]
        definitions[gate_match.group("out")] = (
            gate_match.group("op").upper(),
            args,
        )

    xag = Xag(name)
    signals: dict[str, Signal] = {n: xag.create_pi(n) for n in inputs}
    resolving: set[str] = set()

    def resolve(net: str) -> Signal:
        if net in signals:
            return signals[net]
        if net not in definitions:
            raise BenchError(f"undefined net {net!r}")
        if net in resolving:
            raise BenchError(f"combinational cycle through {net!r}")
        resolving.add(net)
        operator, args = definitions[net]
        operands = [resolve(a) for a in args]
        signals[net] = _apply(xag, operator, operands)
        resolving.discard(net)
        return signals[net]

    for net in outputs:
        xag.create_po(resolve(net), net)
    return xag


def _apply(xag: Xag, operator: str, operands: list[Signal]) -> Signal:
    if operator in ("NOT", "BUF", "BUFF"):
        if len(operands) != 1:
            raise BenchError(f"{operator} expects one operand")
        return operands[0] ^ (operator == "NOT")
    if len(operands) < 2:
        raise BenchError(f"{operator} expects at least two operands")
    combine = {
        "AND": xag.create_and,
        "NAND": xag.create_and,
        "OR": xag.create_or,
        "NOR": xag.create_or,
        "XOR": xag.create_xor,
        "XNOR": xag.create_xor,
    }.get(operator)
    if combine is None:
        raise BenchError(f"unknown operator {operator!r}")
    signal = operands[0]
    for other in operands[1:]:
        signal = combine(signal, other)
    if operator in ("NAND", "NOR", "XNOR"):
        signal ^= 1
    return signal


def read_bench(path: str) -> Xag:
    """Parse a BENCH file into an XAG."""
    with open(path, encoding="utf-8") as handle:
        return parse_bench(handle.read())


def write_bench(xag: Xag) -> str:
    """Serialize an XAG in BENCH format (NOT gates made explicit)."""
    lines = []
    used: set[str] = set()

    def unique(name: str) -> str:
        candidate = name
        suffix = 0
        while candidate in used:
            suffix += 1
            candidate = f"{name}_{suffix}"
        used.add(candidate)
        return candidate

    net_of: dict[int, str] = {}
    for index, pi in enumerate(xag.pis()):
        net = unique(xag.pi_name(pi) or f"pi{index}")
        net_of[pi] = net
        lines.append(f"INPUT({net})")
    output_names = [
        unique(xag.po_name(i) or f"po{i}") for i in range(xag.num_pos)
    ]
    for net in output_names:
        lines.append(f"OUTPUT({net})")

    body: list[str] = []
    inverted: dict[int, str] = {}

    def literal(signal: Signal) -> str:
        node = signal_node(signal)
        if node == 0:
            # Model constants as x NAND/ AND with itself is unavailable in
            # BENCH; emit via an input-free convention instead.
            raise BenchError("constant signals are not expressible in BENCH")
        if not is_complemented(signal):
            return net_of[node]
        if node not in inverted:
            inverted[node] = unique(f"{net_of[node]}_not")
            body.append(f"{inverted[node]} = NOT({net_of[node]})")
        return inverted[node]

    for node in xag.gates():
        f0, f1 = xag.fanins(node)
        operator = "AND" if xag.kind(node) is XagNodeKind.AND else "XOR"
        left, right = literal(f0), literal(f1)
        net_of[node] = unique(f"n{node}")
        body.append(f"{net_of[node]} = {operator}({left}, {right})")

    for index, po in enumerate(xag.pos()):
        body.append(f"{output_names[index]} = BUF({literal(po)})")
    return "\n".join(lines + body) + "\n"
