"""Cross-representation simulation helpers.

Provides exhaustive and randomized equivalence predicates used by tests
and by the formal-verification package's sanity checks.  Unlike
:mod:`repro.verification`, which proves equivalence with SAT, these
helpers simply simulate both representations.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.networks.truth_table import TruthTable


class Simulatable(Protocol):
    """Anything with PIs/POs that can be exhaustively simulated."""

    @property
    def num_pis(self) -> int: ...

    @property
    def num_pos(self) -> int: ...

    def simulate(self) -> list[TruthTable]: ...

    def evaluate(self, inputs: list[bool]) -> list[bool]: ...


def exhaustive_equivalent(a: Simulatable, b: Simulatable) -> bool:
    """Exhaustively compare two representations (up to ~16 inputs)."""
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        return False
    return a.simulate() == b.simulate()


def random_equivalent(
    a: Simulatable, b: Simulatable, patterns: int = 256, seed: int = 0
) -> bool:
    """Compare on random patterns; a False result is a definite mismatch."""
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        return False
    rng = random.Random(seed)
    for _ in range(patterns):
        inputs = [rng.random() < 0.5 for _ in range(a.num_pis)]
        if a.evaluate(inputs) != b.evaluate(inputs):
            return False
    return True


def input_patterns(num_inputs: int) -> list[list[bool]]:
    """All input assignments in index order (LSB = input 0)."""
    return [
        [bool((index >> bit) & 1) for bit in range(num_inputs)]
        for index in range(1 << num_inputs)
    ]
