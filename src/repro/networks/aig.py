"""AND-inverter graphs (AIGs).

The paper picks XAGs over AIGs "as they offer a potentially more compact
representation ... with only a slight overhead in memory consumption"
(Section 4.2).  This module provides a real AIG -- structurally hashed
AND nodes with complemented edges -- so the XAG-vs-AIG ablation compares
genuine data structures rather than an XOR-expansion estimate.
"""

from __future__ import annotations

from repro.networks.truth_table import TruthTable
from repro.networks.xag import (
    Signal,
    Xag,
    XagNodeKind,
    is_complemented,
    signal_node,
)


class Aig:
    """A structurally hashed AND-inverter graph."""

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        self._xag = Xag(name)  # reuse the node store, restricted to AND

    # --- construction -----------------------------------------------------
    def get_constant(self, value: bool) -> Signal:
        return self._xag.get_constant(value)

    def create_pi(self, name: str | None = None) -> Signal:
        return self._xag.create_pi(name)

    def create_not(self, signal: Signal) -> Signal:
        return signal ^ 1

    def create_and(self, a: Signal, b: Signal) -> Signal:
        return self._xag.create_and(a, b)

    def create_or(self, a: Signal, b: Signal) -> Signal:
        return self.create_not(self.create_and(a ^ 1, b ^ 1))

    def create_xor(self, a: Signal, b: Signal) -> Signal:
        """XOR decomposed into three ANDs (the AIG's handicap)."""
        both = self.create_and(a, b)
        either = self.create_or(a, b)
        return self.create_and(either, both ^ 1)

    def create_po(self, signal: Signal, name: str | None = None) -> int:
        return self._xag.create_po(signal, name)

    # --- access -------------------------------------------------------
    @property
    def num_pis(self) -> int:
        return self._xag.num_pis

    @property
    def num_pos(self) -> int:
        return self._xag.num_pos

    @property
    def num_gates(self) -> int:
        return self._xag.num_gates

    def depth(self) -> int:
        return self._xag.depth()

    def simulate(self) -> list[TruthTable]:
        return self._xag.simulate()

    def evaluate(self, inputs: list[bool]) -> list[bool]:
        return self._xag.evaluate(inputs)

    def as_xag(self) -> Xag:
        """View the AIG as an XAG (every AIG is a valid XAG)."""
        return self._xag

    def __repr__(self) -> str:
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis}, "
            f"pos={self.num_pos}, gates={self.num_gates})"
        )


def aig_from_xag(xag: Xag) -> Aig:
    """Convert an XAG to an AIG by expanding each XOR into three ANDs."""
    aig = Aig(xag.name)
    mapping: dict[int, Signal] = {0: aig.get_constant(False)}
    for pi in xag.pis():
        mapping[pi] = aig.create_pi(xag.pi_name(pi))
    for node in xag.gates():
        f0, f1 = xag.fanins(node)
        a = mapping[signal_node(f0)] ^ (f0 & 1)
        b = mapping[signal_node(f1)] ^ (f1 & 1)
        if xag.kind(node) is XagNodeKind.AND:
            mapping[node] = aig.create_and(a, b)
        else:
            mapping[node] = aig.create_xor(a, b)
    for index, po in enumerate(xag.pos()):
        aig.create_po(
            mapping[signal_node(po)] ^ (po & 1), xag.po_name(index)
        )
    return aig
