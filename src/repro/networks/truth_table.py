"""Small truth tables represented as integer bit masks.

A function of ``n`` variables is stored as the integer whose bit ``i``
holds the function value on the input assignment with binary encoding
``i`` (variable 0 is the least significant input).  This matches the
conventions of mockturtle's ``kitty`` library and is convenient for NPN
canonicalization and exact synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations


def _mask(num_vars: int) -> int:
    return (1 << (1 << num_vars)) - 1


# Truth tables of single variables for up to 6 inputs, precomputed:
# variable k of an n-variable function alternates blocks of 2^k zeros/ones.
def _projection(var: int, num_vars: int) -> int:
    bits = 0
    for i in range(1 << num_vars):
        if (i >> var) & 1:
            bits |= 1 << i
    return bits


_PROJECTIONS: dict[tuple[int, int], int] = {}


@dataclass(frozen=True)
class TruthTable:
    """An immutable Boolean function of a fixed number of variables."""

    num_vars: int
    bits: int

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        if self.num_vars > 16:
            raise ValueError("truth tables limited to 16 variables")
        object.__setattr__(self, "bits", self.bits & _mask(self.num_vars))

    # --- constructors ------------------------------------------------
    @classmethod
    def constant(cls, value: bool, num_vars: int = 0) -> "TruthTable":
        """The constant-0 or constant-1 function."""
        return cls(num_vars, _mask(num_vars) if value else 0)

    @classmethod
    def variable(cls, var: int, num_vars: int) -> "TruthTable":
        """The projection function x_var of ``num_vars`` variables."""
        if not 0 <= var < num_vars:
            raise ValueError(f"variable {var} out of range for {num_vars} vars")
        key = (var, num_vars)
        if key not in _PROJECTIONS:
            _PROJECTIONS[key] = _projection(var, num_vars)
        return cls(num_vars, _PROJECTIONS[key])

    @classmethod
    def from_binary_string(cls, bit_string: str) -> "TruthTable":
        """Parse a truth table from its binary string, MSB first.

        The string length must be a power of two; character 0 of the
        string is the function value on the all-ones input assignment.
        """
        length = len(bit_string)
        if length & (length - 1) or length == 0:
            raise ValueError("truth table length must be a power of two")
        num_vars = length.bit_length() - 1
        return cls(num_vars, int(bit_string, 2))

    @classmethod
    def from_hex_string(cls, hex_string: str, num_vars: int) -> "TruthTable":
        """Parse a truth table from its hexadecimal string."""
        return cls(num_vars, int(hex_string, 16))

    # --- queries -------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Number of rows in the truth table."""
        return 1 << self.num_vars

    def get_bit(self, index: int) -> bool:
        """Function value on the input assignment encoded by ``index``."""
        if not 0 <= index < self.num_bits:
            raise IndexError(f"bit index {index} out of range")
        return bool((self.bits >> index) & 1)

    def evaluate(self, assignment: dict[int, bool] | list[bool]) -> bool:
        """Evaluate on a variable assignment (list or var->bool dict)."""
        index = 0
        for var in range(self.num_vars):
            value = assignment[var]
            if value:
                index |= 1 << var
        return self.get_bit(index)

    def count_ones(self) -> int:
        """Number of minterms."""
        return bin(self.bits).count("1")

    def is_constant(self) -> bool:
        return self.bits in (0, _mask(self.num_vars))

    def depends_on(self, var: int) -> bool:
        """Whether the function actually depends on variable ``var``."""
        return self.cofactor(var, False) != self.cofactor(var, True)

    def support(self) -> list[int]:
        """Variables the function actually depends on."""
        return [v for v in range(self.num_vars) if self.depends_on(v)]

    # --- Boolean algebra ------------------------------------------------
    def _check_compatible(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError("truth tables have different variable counts")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, ~self.bits)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits ^ other.bits)

    # --- structural transforms -------------------------------------------
    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Shannon cofactor with ``var`` fixed; result keeps num_vars."""
        projection = TruthTable.variable(var, self.num_vars).bits
        keep = projection if value else ~projection & _mask(self.num_vars)
        half = self.bits & keep
        shift = 1 << var
        if value:
            expanded = half | (half >> shift)
        else:
            expanded = half | (half << shift)
        return TruthTable(self.num_vars, expanded)

    def flip_input(self, var: int) -> "TruthTable":
        """Negate input variable ``var``."""
        shift = 1 << var
        projection = TruthTable.variable(var, self.num_vars).bits
        high = self.bits & projection
        low = self.bits & ~projection
        return TruthTable(self.num_vars, (high >> shift) | (low << shift))

    def permute_inputs(self, permutation: list[int] | tuple[int, ...]) -> "TruthTable":
        """Reorder input variables: new var ``i`` is old var ``permutation[i]``."""
        if sorted(permutation) != list(range(self.num_vars)):
            raise ValueError("not a permutation of the variables")
        bits = 0
        for index in range(self.num_bits):
            if not (self.bits >> index) & 1:
                continue
            new_index = 0
            for new_var, old_var in enumerate(permutation):
                if (index >> old_var) & 1:
                    new_index |= 1 << new_var
            bits |= 1 << new_index
        return TruthTable(self.num_vars, bits)

    def extend_to(self, num_vars: int) -> "TruthTable":
        """View the function as one of more variables (new vars ignored)."""
        if num_vars < self.num_vars:
            raise ValueError("cannot shrink a truth table with extend_to")
        bits = self.bits
        width = self.num_bits
        for _ in range(num_vars - self.num_vars):
            bits = bits | (bits << width)
            width <<= 1
        return TruthTable(num_vars, bits)

    def shrink_to_support(self) -> tuple["TruthTable", list[int]]:
        """Project onto the support; returns (smaller table, support vars)."""
        support = self.support()
        table = self
        # Repeatedly remove the highest-numbered irrelevant variable.
        for var in reversed(range(self.num_vars)):
            if var in support:
                continue
            table = table._remove_variable(var)
        return table, support

    def _remove_variable(self, var: int) -> "TruthTable":
        """Drop an irrelevant variable (must not be in the support)."""
        bits = 0
        out = 0
        for index in range(self.num_bits):
            if (index >> var) & 1:
                continue
            if (self.bits >> index) & 1:
                bits |= 1 << out
            out += 1
        return TruthTable(self.num_vars - 1, bits)

    # --- formatting -----------------------------------------------------
    def to_binary_string(self) -> str:
        return format(self.bits, f"0{self.num_bits}b")

    def to_hex_string(self) -> str:
        digits = max(1, self.num_bits // 4)
        return format(self.bits, f"0{digits}x")

    def __str__(self) -> str:
        return self.to_binary_string()


def all_input_permutations(num_vars: int):
    """All variable permutations, shared helper for NPN enumeration."""
    return permutations(range(num_vars))
