"""XOR-AND-Inverter Graphs (XAGs) with structural hashing.

The paper's flow parses logic specifications into XAGs (flow step 1)
because the Bestagon library natively supports both AND and XOR standard
tiles, making XAGs "a potentially more compact representation compared to
AND-inverter graphs" (Section 4.2).

Following mockturtle/AIGER conventions, a *signal* is an integer
``2 * node + complement``: even signals are regular node outputs, odd
signals are complemented.  Node 0 is the constant 0, so signal 0 is
constant false and signal 1 constant true.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.networks.truth_table import TruthTable

Signal = int


class XagNodeKind(enum.Enum):
    CONSTANT = "const"
    PI = "pi"
    AND = "and"
    XOR = "xor"


@dataclass
class _XagNode:
    kind: XagNodeKind
    fanin0: Signal = 0
    fanin1: Signal = 0
    name: str | None = None


def make_signal(node: int, complemented: bool = False) -> Signal:
    """Build a signal from a node index and a complement flag."""
    return (node << 1) | int(complemented)


def signal_node(signal: Signal) -> int:
    """Node index a signal refers to."""
    return signal >> 1


def is_complemented(signal: Signal) -> bool:
    """Whether a signal is complemented."""
    return bool(signal & 1)


class Xag:
    """A structurally hashed XOR-AND-inverter graph."""

    def __init__(self, name: str = "xag") -> None:
        self.name = name
        self._nodes: list[_XagNode] = [_XagNode(XagNodeKind.CONSTANT)]
        self._pis: list[int] = []
        self._pos: list[Signal] = []
        self._po_names: list[str | None] = []
        self._strash: dict[tuple[XagNodeKind, Signal, Signal], int] = {}

    # --- construction -----------------------------------------------------
    def get_constant(self, value: bool) -> Signal:
        """Signal of constant false/true."""
        return make_signal(0, value)

    def create_pi(self, name: str | None = None) -> Signal:
        """Add a primary input; returns its signal."""
        index = len(self._nodes)
        self._nodes.append(_XagNode(XagNodeKind.PI, name=name))
        self._pis.append(index)
        return make_signal(index)

    def create_not(self, signal: Signal) -> Signal:
        """Complement a signal (free in an inverter graph)."""
        return signal ^ 1

    def _create_binary(
        self, kind: XagNodeKind, a: Signal, b: Signal
    ) -> Signal:
        if a > b:
            a, b = b, a
        key = (kind, a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(_XagNode(kind, a, b))
            self._strash[key] = node
        return make_signal(node)

    def create_and(self, a: Signal, b: Signal) -> Signal:
        """AND of two signals, with constant/trivial-case propagation."""
        if a == b:
            return a
        if a == (b ^ 1):
            return self.get_constant(False)
        if a == self.get_constant(False) or b == self.get_constant(False):
            return self.get_constant(False)
        if a == self.get_constant(True):
            return b
        if b == self.get_constant(True):
            return a
        return self._create_binary(XagNodeKind.AND, a, b)

    def create_xor(self, a: Signal, b: Signal) -> Signal:
        """XOR of two signals, with constant/trivial-case propagation.

        Complements are pulled out of the node so structurally equal XORs
        hash to the same node regardless of edge polarities.
        """
        if a == b:
            return self.get_constant(False)
        if a == (b ^ 1):
            return self.get_constant(True)
        if signal_node(a) == 0:
            return b ^ (a & 1)
        if signal_node(b) == 0:
            return a ^ (b & 1)
        polarity = (a & 1) ^ (b & 1)
        return self._create_binary(XagNodeKind.XOR, a & ~1, b & ~1) ^ polarity

    def create_or(self, a: Signal, b: Signal) -> Signal:
        """OR via De Morgan."""
        return self.create_not(self.create_and(a ^ 1, b ^ 1))

    def create_nand(self, a: Signal, b: Signal) -> Signal:
        return self.create_not(self.create_and(a, b))

    def create_nor(self, a: Signal, b: Signal) -> Signal:
        return self.create_not(self.create_or(a, b))

    def create_xnor(self, a: Signal, b: Signal) -> Signal:
        return self.create_not(self.create_xor(a, b))

    def create_maj(self, a: Signal, b: Signal, c: Signal) -> Signal:
        """Majority-of-three, decomposed into AND/XOR.

        MAJ(a, b, c) = (a AND b) XOR ((a XOR b) AND c); the XAG itself has
        no majority primitive (unsupported by the Bestagon library).
        """
        ab = self.create_and(a, b)
        axb = self.create_xor(a, b)
        return self.create_xor(ab, self.create_and(axb, c))

    def create_ite(self, cond: Signal, then: Signal, other: Signal) -> Signal:
        """If-then-else (multiplexer)."""
        t = self.create_and(cond, then)
        e = self.create_and(cond ^ 1, other)
        return self.create_or(t, e)

    def create_po(self, signal: Signal, name: str | None = None) -> int:
        """Register a primary output; returns its index."""
        self._pos.append(signal)
        self._po_names.append(name)
        return len(self._pos) - 1

    # --- access -------------------------------------------------------
    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    @property
    def num_gates(self) -> int:
        """Number of AND/XOR nodes (inverters are edge attributes)."""
        return len(self._nodes) - 1 - len(self._pis)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def pis(self) -> list[int]:
        return list(self._pis)

    def pos(self) -> list[Signal]:
        return list(self._pos)

    def po_name(self, index: int) -> str | None:
        return self._po_names[index]

    def pi_name(self, node: int) -> str | None:
        return self._nodes[node].name

    def pi_index(self, node: int) -> int:
        """Position of a PI node in the PI list."""
        return self._pis.index(node)

    def kind(self, node: int) -> XagNodeKind:
        return self._nodes[node].kind

    def is_pi(self, node: int) -> bool:
        return self._nodes[node].kind is XagNodeKind.PI

    def is_constant(self, node: int) -> bool:
        return self._nodes[node].kind is XagNodeKind.CONSTANT

    def is_gate(self, node: int) -> bool:
        return self._nodes[node].kind in (XagNodeKind.AND, XagNodeKind.XOR)

    def fanins(self, node: int) -> tuple[Signal, Signal]:
        if not self.is_gate(node):
            raise ValueError(f"node {node} has no fanins")
        entry = self._nodes[node]
        return entry.fanin0, entry.fanin1

    def gates(self) -> list[int]:
        """All gate nodes in topological (creation) order."""
        return [n for n in range(len(self._nodes)) if self.is_gate(n)]

    def fanout_counts(self) -> dict[int, int]:
        """Fanout degree of each node, counting PO drivers."""
        counts = {n: 0 for n in range(len(self._nodes))}
        for node in self.gates():
            f0, f1 = self.fanins(node)
            counts[signal_node(f0)] += 1
            counts[signal_node(f1)] += 1
        for po in self._pos:
            counts[signal_node(po)] += 1
        return counts

    # --- analysis -------------------------------------------------------
    def levels(self) -> dict[int, int]:
        """Logic level of each node (PIs and constants at level 0)."""
        level: dict[int, int] = {}
        for node in range(len(self._nodes)):
            if self.is_gate(node):
                f0, f1 = self.fanins(node)
                level[node] = 1 + max(
                    level[signal_node(f0)], level[signal_node(f1)]
                )
            else:
                level[node] = 0
        return level

    def depth(self) -> int:
        """Depth of the graph: maximum PO level."""
        if not self._pos:
            return 0
        level = self.levels()
        return max(level[signal_node(po)] for po in self._pos)

    def simulate(self) -> list[TruthTable]:
        """Full truth tables of all POs over the PIs."""
        n = self.num_pis
        values: dict[int, TruthTable] = {0: TruthTable.constant(False, n)}
        for position, pi in enumerate(self._pis):
            values[pi] = TruthTable.variable(position, n)
        for node in range(len(self._nodes)):
            if not self.is_gate(node):
                continue
            f0, f1 = self.fanins(node)
            a = values[signal_node(f0)]
            if is_complemented(f0):
                a = ~a
            b = values[signal_node(f1)]
            if is_complemented(f1):
                b = ~b
            if self.kind(node) is XagNodeKind.AND:
                values[node] = a & b
            else:
                values[node] = a ^ b
        outputs = []
        for po in self._pos:
            table = values[signal_node(po)]
            if is_complemented(po):
                table = ~table
            outputs.append(table)
        return outputs

    def evaluate(self, inputs: list[bool]) -> list[bool]:
        """Evaluate all POs on one input assignment."""
        if len(inputs) != self.num_pis:
            raise ValueError("wrong number of input values")
        values: dict[int, bool] = {0: False}
        for position, pi in enumerate(self._pis):
            values[pi] = inputs[position]
        for node in range(len(self._nodes)):
            if not self.is_gate(node):
                continue
            f0, f1 = self.fanins(node)
            a = values[signal_node(f0)] ^ is_complemented(f0)
            b = values[signal_node(f1)] ^ is_complemented(f1)
            values[node] = (a and b) if self.kind(node) is XagNodeKind.AND else (a != b)
        return [values[signal_node(po)] ^ is_complemented(po) for po in self._pos]

    def cleanup(self) -> "Xag":
        """Copy without dangling nodes; preserves PI/PO order and names."""
        result = Xag(self.name)
        mapping: dict[int, Signal] = {0: result.get_constant(False)}
        for pi in self._pis:
            mapping[pi] = result.create_pi(self._nodes[pi].name)
        reachable = self._reachable_nodes()
        for node in range(len(self._nodes)):
            if not self.is_gate(node) or node not in reachable:
                continue
            f0, f1 = self.fanins(node)
            a = mapping[signal_node(f0)] ^ (f0 & 1)
            b = mapping[signal_node(f1)] ^ (f1 & 1)
            if self.kind(node) is XagNodeKind.AND:
                mapping[node] = result.create_and(a, b)
            else:
                mapping[node] = result.create_xor(a, b)
        for index, po in enumerate(self._pos):
            signal = mapping[signal_node(po)] ^ (po & 1)
            result.create_po(signal, self._po_names[index])
        return result

    # --- (de)serialization ------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready structural dump; exact inverse of :meth:`from_dict`.

        The node list is stored verbatim (including any dangling nodes),
        so a round-tripped graph reports identical node/gate counts --
        the property the design-service artifact store relies on.
        """
        return {
            "name": self.name,
            "nodes": [
                [node.kind.value, node.fanin0, node.fanin1, node.name]
                for node in self._nodes
            ],
            "pis": list(self._pis),
            "pos": list(self._pos),
            "po_names": list(self._po_names),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Xag":
        """Rebuild a graph dumped by :meth:`to_dict` (strash included)."""
        xag = cls(str(data.get("name", "xag")))
        xag._nodes = [
            _XagNode(XagNodeKind(kind), fanin0, fanin1, name)
            for kind, fanin0, fanin1, name in data["nodes"]
        ]
        xag._pis = [int(pi) for pi in data["pis"]]
        xag._pos = [int(po) for po in data["pos"]]
        xag._po_names = list(data["po_names"])
        for index, node in enumerate(xag._nodes):
            if node.kind in (XagNodeKind.AND, XagNodeKind.XOR):
                xag._strash[(node.kind, node.fanin0, node.fanin1)] = index
        return xag

    def _reachable_nodes(self) -> set[int]:
        """Nodes in the transitive fanin of some PO."""
        reachable: set[int] = set()
        stack = [signal_node(po) for po in self._pos]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if self.is_gate(node):
                f0, f1 = self.fanins(node)
                stack.append(signal_node(f0))
                stack.append(signal_node(f1))
        return reachable

    def __repr__(self) -> str:
        return (
            f"Xag(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates}, depth={self.depth()})"
        )
