"""Logic network substrate (mockturtle substitute).

Provides truth tables, XOR-AND-inverter graphs (XAGs) with structural
hashing, generic technology netlists, simulation, file-format I/O and the
built-in benchmark suite used by the paper's evaluation.
"""

from repro.networks.truth_table import TruthTable
from repro.networks.xag import Xag, Signal
from repro.networks.logic_network import GateType, LogicNetwork
from repro.networks.benchmarks import (
    BENCHMARK_NAMES,
    FONTES18_NAMES,
    TABLE1_NAMES,
    TRINDADE16_NAMES,
    benchmark_network,
    benchmark_verilog,
)

__all__ = [
    "TruthTable",
    "Xag",
    "Signal",
    "GateType",
    "LogicNetwork",
    "BENCHMARK_NAMES",
    "TRINDADE16_NAMES",
    "FONTES18_NAMES",
    "TABLE1_NAMES",
    "benchmark_network",
    "benchmark_verilog",
]
