"""Technology-level logic networks.

While :class:`repro.networks.xag.Xag` is the synthesis data structure, the
physical design steps operate on *technology networks* whose nodes map
one-to-one onto Bestagon standard tiles: two-input gates, explicit
inverters, explicit fan-outs and explicit primary-output pins.  Inverters
are real nodes here (they occupy a tile), unlike the complemented edges of
the XAG.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.networks.truth_table import TruthTable


class GateType(enum.Enum):
    """Node types of a technology network, mirroring the Bestagon library."""

    PI = "pi"
    PO = "po"
    BUF = "buf"
    INV = "inv"
    FANOUT = "fanout"
    AND2 = "and"
    NAND2 = "nand"
    OR2 = "or"
    NOR2 = "nor"
    XOR2 = "xor"
    XNOR2 = "xnor"
    CONST0 = "const0"
    CONST1 = "const1"

    @property
    def arity(self) -> int:
        """Number of fanins the type requires."""
        return _ARITY[self]

    @property
    def is_two_input(self) -> bool:
        return self.arity == 2

    def evaluate(self, inputs: list[bool]) -> bool:
        """Boolean semantics of the gate type."""
        if len(inputs) != self.arity:
            raise ValueError(f"{self.value} expects {self.arity} inputs")
        if self is GateType.CONST0:
            return False
        if self is GateType.CONST1:
            return True
        if self in (GateType.BUF, GateType.FANOUT, GateType.PO):
            return inputs[0]
        if self is GateType.INV:
            return not inputs[0]
        a, b = inputs
        if self is GateType.AND2:
            return a and b
        if self is GateType.NAND2:
            return not (a and b)
        if self is GateType.OR2:
            return a or b
        if self is GateType.NOR2:
            return not (a or b)
        if self is GateType.XOR2:
            return a != b
        if self is GateType.XNOR2:
            return a == b
        raise ValueError(f"{self.value} has no Boolean semantics")


_ARITY = {
    GateType.PI: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.PO: 1,
    GateType.BUF: 1,
    GateType.INV: 1,
    GateType.FANOUT: 1,
    GateType.AND2: 2,
    GateType.NAND2: 2,
    GateType.OR2: 2,
    GateType.NOR2: 2,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
}

# Gate types with two outputs carrying the same logic value.
MAX_FANOUT_DEGREE = 2


@dataclass
class _Node:
    gate_type: GateType
    fanins: list[int] = field(default_factory=list)
    name: str | None = None


class LogicNetwork:
    """A DAG of technology gates; node ids are dense integers."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._nodes: list[_Node] = []
        self._pis: list[int] = []
        self._pos: list[int] = []

    # --- construction ------------------------------------------------
    def add_node(
        self,
        gate_type: GateType,
        fanins: list[int] | None = None,
        name: str | None = None,
    ) -> int:
        """Add a node; fanins must already exist (DAG in creation order)."""
        fanins = list(fanins or [])
        if len(fanins) != gate_type.arity:
            raise ValueError(
                f"{gate_type.value} expects {gate_type.arity} fanins, "
                f"got {len(fanins)}"
            )
        node = len(self._nodes)
        for fanin in fanins:
            if not 0 <= fanin < node:
                raise ValueError(f"fanin {fanin} does not precede node {node}")
        self._nodes.append(_Node(gate_type, fanins, name))
        if gate_type is GateType.PI:
            self._pis.append(node)
        elif gate_type is GateType.PO:
            self._pos.append(node)
        return node

    def add_pi(self, name: str | None = None) -> int:
        return self.add_node(GateType.PI, name=name)

    def add_po(self, driver: int, name: str | None = None) -> int:
        return self.add_node(GateType.PO, [driver], name=name)

    # --- access -------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    def pis(self) -> list[int]:
        return list(self._pis)

    def pos(self) -> list[int]:
        return list(self._pos)

    def nodes(self) -> range:
        return range(len(self._nodes))

    def gate_type(self, node: int) -> GateType:
        return self._nodes[node].gate_type

    def fanins(self, node: int) -> list[int]:
        return list(self._nodes[node].fanins)

    def node_name(self, node: int) -> str | None:
        return self._nodes[node].name

    def num_gates(self) -> int:
        """Number of non-PI/PO nodes (tiles occupied by logic or wiring)."""
        return sum(
            1
            for n in self._nodes
            if n.gate_type not in (GateType.PI, GateType.PO)
        )

    def count_type(self, gate_type: GateType) -> int:
        return sum(1 for n in self._nodes if n.gate_type is gate_type)

    def fanouts(self) -> dict[int, list[int]]:
        """Consumers of every node."""
        result: dict[int, list[int]] = {n: [] for n in self.nodes()}
        for node in self.nodes():
            for fanin in self._nodes[node].fanins:
                result[fanin].append(node)
        return result

    def fanout_degree(self, node: int) -> int:
        return len(self.fanouts()[node])

    # --- invariants -----------------------------------------------------
    def check_fanout_discipline(self) -> list[str]:
        """Violations of the Bestagon fan-out rules.

        Only FANOUT nodes may drive two consumers; every other node must
        drive at most one.  (FANOUT tiles are 1-in-2-out.)
        """
        problems = []
        for node, consumers in self.fanouts().items():
            limit = (
                MAX_FANOUT_DEGREE
                if self.gate_type(node) is GateType.FANOUT
                else 1
            )
            if len(consumers) > limit:
                problems.append(
                    f"node {node} ({self.gate_type(node).value}) drives "
                    f"{len(consumers)} consumers (limit {limit})"
                )
        return problems

    # --- analysis -------------------------------------------------------
    def levels(self) -> dict[int, int]:
        """Logic level of each node; PIs/constants at 0."""
        level: dict[int, int] = {}
        for node in self.nodes():
            fanins = self._nodes[node].fanins
            if not fanins:
                level[node] = 0
            else:
                level[node] = 1 + max(level[f] for f in fanins)
        return level

    def depth(self) -> int:
        if not self._pos:
            return 0
        level = self.levels()
        return max(level[po] for po in self._pos)

    def simulate(self) -> list[TruthTable]:
        """Full truth tables of all POs over the PIs."""
        n = self.num_pis
        values: dict[int, TruthTable] = {}
        pi_position = {pi: i for i, pi in enumerate(self._pis)}
        for node in self.nodes():
            gate_type = self._nodes[node].gate_type
            if gate_type is GateType.PI:
                values[node] = TruthTable.variable(pi_position[node], n)
            elif gate_type is GateType.CONST0:
                values[node] = TruthTable.constant(False, n)
            elif gate_type is GateType.CONST1:
                values[node] = TruthTable.constant(True, n)
            else:
                fanin_tables = [values[f] for f in self._nodes[node].fanins]
                values[node] = _apply(gate_type, fanin_tables)
        return [values[po] for po in self._pos]

    def evaluate(self, inputs: list[bool]) -> list[bool]:
        """Evaluate all POs on one input assignment."""
        if len(inputs) != self.num_pis:
            raise ValueError("wrong number of input values")
        values: dict[int, bool] = {}
        pi_position = {pi: i for i, pi in enumerate(self._pis)}
        for node in self.nodes():
            gate_type = self._nodes[node].gate_type
            if gate_type is GateType.PI:
                values[node] = inputs[pi_position[node]]
            else:
                fanin_values = [values[f] for f in self._nodes[node].fanins]
                values[node] = gate_type.evaluate(fanin_values)
        return [values[po] for po in self._pos]

    # --- (de)serialization --------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready structural dump; exact inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "nodes": [
                [node.gate_type.value, list(node.fanins), node.name]
                for node in self._nodes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogicNetwork":
        """Rebuild a network dumped by :meth:`to_dict`.

        Goes through :meth:`add_node`, so fanin ordering and arities are
        re-validated and the PI/PO lists rebuild themselves.
        """
        network = cls(str(data.get("name", "netlist")))
        for gate_type, fanins, name in data["nodes"]:
            network.add_node(GateType(gate_type), list(fanins), name)
        return network

    def __repr__(self) -> str:
        return (
            f"LogicNetwork(name={self.name!r}, pis={self.num_pis}, "
            f"pos={self.num_pos}, gates={self.num_gates()}, "
            f"depth={self.depth()})"
        )


def _apply(gate_type: GateType, tables: list[TruthTable]) -> TruthTable:
    """Apply a gate's semantics to fanin truth tables."""
    if gate_type in (GateType.BUF, GateType.FANOUT, GateType.PO):
        return tables[0]
    if gate_type is GateType.INV:
        return ~tables[0]
    a, b = tables
    if gate_type is GateType.AND2:
        return a & b
    if gate_type is GateType.NAND2:
        return ~(a & b)
    if gate_type is GateType.OR2:
        return a | b
    if gate_type is GateType.NOR2:
        return ~(a | b)
    if gate_type is GateType.XOR2:
        return a ^ b
    if gate_type is GateType.XNOR2:
        return ~(a ^ b)
    raise ValueError(f"cannot apply {gate_type.value}")
