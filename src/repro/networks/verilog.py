"""Gate-level Verilog reader and writer.

The paper's flow "starts with specifications at the logic level, e.g.,
provided by gate-level Verilog" (Section 4.2, flow step 1).  This module
parses the structural/dataflow Verilog subset used by the fiction
benchmark suites into an :class:`~repro.networks.xag.Xag`:

* one module per file,
* ``input`` / ``output`` / ``wire`` declarations (scalar only),
* ``assign`` statements with ``~ & ^ | ?:`` expressions and parentheses,
* gate primitives ``not/buf/and/nand/or/nor/xor/xnor (out, in...)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.networks.xag import Signal, Xag, is_complemented, signal_node, XagNodeKind


class VerilogError(ValueError):
    """Raised on malformed Verilog input."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<ident>[A-Za-z_][A-Za-z0-9_$\[\]]*)"
    r"|(?P<const>1'b[01])"
    r"|(?P<punct>[(),;=~&^|?:])"
    r")"
)

_PRIMITIVES = {"not", "buf", "and", "nand", "or", "nor", "xor", "xnor"}
_KEYWORDS = {"module", "endmodule", "input", "output", "wire", "assign"} | _PRIMITIVES


@dataclass
class _Module:
    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    wires: list[str] = field(default_factory=list)
    # net name -> expression AST (for assigns) or ('gate', prim, fanins)
    definitions: dict[str, tuple] = field(default_factory=dict)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return text


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    text = text.strip()
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            raise VerilogError(f"unexpected character at: {text[pos:pos + 20]!r}")
        token = match.group("ident") or match.group("const") or match.group("punct")
        tokens.append(token)
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise VerilogError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise VerilogError(f"expected {token!r}, got {got!r}")

    # --- module structure ---------------------------------------------
    def parse_module(self) -> _Module:
        self.expect("module")
        module = _Module(self.next())
        if self.peek() == "(":
            self.next()
            while self.peek() != ")":
                token = self.next()
                if token in ("input", "output", "wire", ","):
                    continue
                # port name (ANSI or non-ANSI style)
            self.expect(")")
        self.expect(";")
        while self.peek() != "endmodule":
            self._parse_item(module)
        self.expect("endmodule")
        return module

    def _parse_item(self, module: _Module) -> None:
        token = self.next()
        if token in ("input", "output", "wire"):
            names = self._parse_name_list()
            target = {
                "input": module.inputs,
                "output": module.outputs,
                "wire": module.wires,
            }[token]
            target.extend(names)
        elif token == "assign":
            net = self.next()
            if net in module.inputs:
                raise VerilogError(f"cannot assign to input {net!r}")
            self.expect("=")
            expression = self._parse_expression()
            self.expect(";")
            if net in module.definitions:
                raise VerilogError(f"net {net!r} assigned twice")
            module.definitions[net] = expression
        elif token in _PRIMITIVES:
            # optional instance name
            if self.peek() != "(":
                self.next()
            self.expect("(")
            nets = [self.next()]
            while self.peek() == ",":
                self.next()
                nets.append(self.next())
            self.expect(")")
            self.expect(";")
            out, fanins = nets[0], nets[1:]
            if out in module.definitions:
                raise VerilogError(f"net {out!r} assigned twice")
            module.definitions[out] = ("gate", token, fanins)
        else:
            raise VerilogError(f"unexpected token {token!r}")

    def _parse_name_list(self) -> list[str]:
        names = [self.next()]
        while self.peek() == ",":
            self.next()
            names.append(self.next())
        self.expect(";")
        return names

    # --- expressions (precedence: ~  &  ^  |  ?:) ----------------------
    def _parse_expression(self) -> tuple:
        condition = self._parse_or()
        if self.peek() == "?":
            self.next()
            then_branch = self._parse_expression()
            self.expect(":")
            else_branch = self._parse_expression()
            return ("ite", condition, then_branch, else_branch)
        return condition

    def _parse_or(self) -> tuple:
        left = self._parse_xor()
        while self.peek() == "|":
            self.next()
            left = ("or", left, self._parse_xor())
        return left

    def _parse_xor(self) -> tuple:
        left = self._parse_and()
        while self.peek() == "^":
            self.next()
            left = ("xor", left, self._parse_and())
        return left

    def _parse_and(self) -> tuple:
        left = self._parse_unary()
        while self.peek() == "&":
            self.next()
            left = ("and", left, self._parse_unary())
        return left

    def _parse_unary(self) -> tuple:
        token = self.peek()
        if token == "~":
            self.next()
            return ("not", self._parse_unary())
        if token == "(":
            self.next()
            inner = self._parse_expression()
            self.expect(")")
            return inner
        token = self.next()
        if token in ("1'b0", "1'b1"):
            return ("const", token.endswith("1"))
        if token in _KEYWORDS or not re.match(r"[A-Za-z_]", token):
            raise VerilogError(f"unexpected token {token!r} in expression")
        return ("net", token)


def parse_verilog(text: str, name: str | None = None) -> Xag:
    """Parse a Verilog module into an XAG."""
    tokens = _tokenize(_strip_comments(text))
    module = _Parser(tokens).parse_module()
    xag = Xag(name or module.name)

    signals: dict[str, Signal] = {}
    for input_name in module.inputs:
        signals[input_name] = xag.create_pi(input_name)

    resolving: set[str] = set()

    def resolve(net: str) -> Signal:
        if net in signals:
            return signals[net]
        if net not in module.definitions:
            raise VerilogError(f"undefined net {net!r}")
        if net in resolving:
            raise VerilogError(f"combinational cycle through {net!r}")
        resolving.add(net)
        signal = build(module.definitions[net])
        resolving.discard(net)
        signals[net] = signal
        return signal

    def build(expression: tuple) -> Signal:
        op = expression[0]
        if op == "net":
            return resolve(expression[1])
        if op == "const":
            return xag.get_constant(expression[1])
        if op == "not":
            return xag.create_not(build(expression[1]))
        if op == "ite":
            return xag.create_ite(
                build(expression[1]), build(expression[2]), build(expression[3])
            )
        if op == "gate":
            _, primitive, fanins = expression
            inputs = [resolve(f) for f in fanins]
            return _build_primitive(xag, primitive, inputs)
        left = build(expression[1])
        right = build(expression[2])
        if op == "and":
            return xag.create_and(left, right)
        if op == "or":
            return xag.create_or(left, right)
        if op == "xor":
            return xag.create_xor(left, right)
        raise VerilogError(f"unknown operator {op!r}")

    for output_name in module.outputs:
        xag.create_po(resolve(output_name), output_name)
    return xag


def _build_primitive(xag: Xag, primitive: str, inputs: list[Signal]) -> Signal:
    """Build a (possibly multi-input) Verilog gate primitive."""
    if primitive in ("not", "buf"):
        if len(inputs) != 1:
            raise VerilogError(f"{primitive} expects one input")
        return inputs[0] ^ (primitive == "not")
    if len(inputs) < 2:
        raise VerilogError(f"{primitive} expects at least two inputs")
    combine = {
        "and": xag.create_and,
        "nand": xag.create_and,
        "or": xag.create_or,
        "nor": xag.create_or,
        "xor": xag.create_xor,
        "xnor": xag.create_xor,
    }[primitive]
    signal = inputs[0]
    for other in inputs[1:]:
        signal = combine(signal, other)
    if primitive in ("nand", "nor", "xnor"):
        signal ^= 1
    return signal


def read_verilog(path: str) -> Xag:
    """Parse a Verilog file into an XAG."""
    with open(path, encoding="utf-8") as handle:
        return parse_verilog(handle.read())


def _sanitize(name: str) -> str:
    """Make a net name a legal Verilog identifier."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name) and name not in _KEYWORDS:
        return name
    cleaned = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    return f"g{cleaned}"


def write_verilog(xag: Xag) -> str:
    """Serialize an XAG as dataflow Verilog (assign statements)."""
    used: set[str] = set()

    def unique(name: str) -> str:
        candidate = name
        suffix = 0
        while candidate in used:
            suffix += 1
            candidate = f"{name}_{suffix}"
        used.add(candidate)
        return candidate

    input_names = [
        unique(_sanitize(xag.pi_name(pi) or f"pi{i}"))
        for i, pi in enumerate(xag.pis())
    ]
    output_names = [
        unique(_sanitize(xag.po_name(i) or f"po{i}")) for i in range(xag.num_pos)
    ]
    module_name = _sanitize(xag.name)
    lines = [f"module {module_name} ({', '.join(input_names + output_names)});"]
    if input_names:
        lines.append(f"  input {', '.join(input_names)};")
    if output_names:
        lines.append(f"  output {', '.join(output_names)};")

    net_of: dict[int, str] = {pi: name for pi, name in zip(xag.pis(), input_names)}
    gates = xag.gates()
    wire_names = {node: unique(f"n{node}") for node in gates}
    if wire_names:
        lines.append(f"  wire {', '.join(wire_names.values())};")

    def literal(signal: Signal) -> str:
        node = signal_node(signal)
        if node == 0:
            return "1'b1" if is_complemented(signal) else "1'b0"
        text = net_of[node]
        return f"~{text}" if is_complemented(signal) else text

    for node in gates:
        f0, f1 = xag.fanins(node)
        operator = "&" if xag.kind(node) is XagNodeKind.AND else "^"
        lines.append(
            f"  assign {wire_names[node]} = "
            f"{literal(f0)} {operator} {literal(f1)};"
        )
        net_of[node] = wire_names[node]

    for index, po in enumerate(xag.pos()):
        lines.append(f"  assign {output_names[index]} = {literal(po)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
