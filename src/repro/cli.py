"""Command-line interface for the SiDB design flow.

    python -m repro.cli synth  <spec.v | benchmark-name> [options]
    python -m repro.cli bench  [name ...]
    python -m repro.cli validate <tile-name ...>
    python -m repro.cli library

``synth`` runs the 8-step flow and writes .sqd/.svg artifacts; ``bench``
prints Table-1 style rows; ``validate`` runs the physics operational
check on library tiles; ``library`` lists the Bestagon designs.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.flow import (
    FlowConfiguration,
    design_sidb_circuit,
    format_table1_row,
    trace_json,
    trace_report,
)
from repro.gatelib import BestagonLibrary
from repro.layout.render import layout_to_ascii, layout_to_svg
from repro.networks import BENCHMARK_NAMES, benchmark_verilog


def _load_specification(source: str) -> tuple[str, str]:
    """(verilog text, name) from a file path or a benchmark name."""
    if os.path.exists(source):
        with open(source, encoding="utf-8") as handle:
            return handle.read(), os.path.splitext(os.path.basename(source))[0]
    if source in BENCHMARK_NAMES:
        return benchmark_verilog(source), source
    raise SystemExit(
        f"'{source}' is neither a file nor a benchmark "
        f"(known: {', '.join(sorted(BENCHMARK_NAMES))})"
    )


def cmd_synth(args: argparse.Namespace) -> int:
    verilog, name = _load_specification(args.spec)
    config = FlowConfiguration(
        engine=args.engine,
        exact_conflict_limit=args.conflict_limit,
        exact_time_limit_seconds=args.time_limit,
    )
    result = design_sidb_circuit(verilog, name, config)
    print(result.summary())
    if args.ascii:
        print()
        print(layout_to_ascii(result.layout))
    if args.trace:
        print()
        print(trace_report(result))
    if args.trace_json:
        with open(args.trace_json, "w", encoding="utf-8") as handle:
            handle.write(trace_json(result))
        print(f"wrote {args.trace_json}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_sqd())
        print(f"wrote {args.output}")
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(layout_to_svg(result.layout))
        print(f"wrote {args.svg}")
    return 0 if (result.equivalence and result.equivalence.equivalent) else 1


def cmd_bench(args: argparse.Namespace) -> int:
    names = args.names or [
        "xor2", "xnor2", "par_gen", "mux21", "par_check",
        "xor5_r1", "c17", "majority",
    ]
    config = FlowConfiguration(
        engine="auto", exact_conflict_limit=args.conflict_limit
    )
    status = 0
    for name in names:
        verilog, _ = _load_specification(name)
        try:
            result = design_sidb_circuit(verilog, name, config)
        except Exception as error:
            print(f"{name:15s} failed: {error}")
            status = 1
            continue
        print(format_table1_row(
            name, result.width, result.height,
            result.num_sidbs, result.area_nm2,
        ))
    return status


def cmd_validate(args: argparse.Namespace) -> int:
    library = BestagonLibrary()
    names = args.names or ["wire_NW_SW", "inv_NW_SW", "and_SE", "or_SE"]
    status = 0
    for name in names:
        report = library.validate(name)
        correct = sum(p.correct for p in report.patterns)
        verdict = "operational" if report.operational else "NOT operational"
        print(f"{name:16s} {verdict} ({correct}/{len(report.patterns)} patterns)")
        if not report.operational:
            status = 1
    return status


def cmd_library(args: argparse.Namespace) -> int:
    library = BestagonLibrary()
    for name in library.names():
        design = library.design(name)
        status = "motifs-validated" if design.validated_motifs else "assembled"
        print(f"{name:16s} {design.num_sidbs:3d} SiDBs  "
              f"in:{','.join(p.value for p in design.input_ports) or '-':6s}"
              f" out:{','.join(p.value for p in design.output_ports) or '-':6s}"
              f"  [{status}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SiDB design automation (Bestagon flow)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="run the 8-step flow")
    synth.add_argument("spec", help="Verilog file or benchmark name")
    synth.add_argument("--engine", default="auto",
                       choices=["exact", "heuristic", "auto"])
    synth.add_argument("--conflict-limit", type=int, default=400_000)
    synth.add_argument("--time-limit", type=float, default=None)
    synth.add_argument("-o", "--output", help="write .sqd design file")
    synth.add_argument("--svg", help="write SVG rendering")
    synth.add_argument("--ascii", action="store_true",
                       help="print ASCII layout")
    synth.add_argument("--trace", action="store_true",
                       help="print the observability trace tree")
    synth.add_argument("--trace-json", metavar="PATH",
                       help="write the observability trace as JSON")
    synth.set_defaults(handler=cmd_synth)

    bench = sub.add_parser("bench", help="Table-1 style rows")
    bench.add_argument("names", nargs="*")
    bench.add_argument("--conflict-limit", type=int, default=150_000)
    bench.set_defaults(handler=cmd_bench)

    validate = sub.add_parser("validate", help="physics-check library tiles")
    validate.add_argument("names", nargs="*")
    validate.set_defaults(handler=cmd_validate)

    library = sub.add_parser("library", help="list Bestagon tile designs")
    library.set_defaults(handler=cmd_library)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
