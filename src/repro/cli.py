"""Command-line interface for the SiDB design flow.

    python -m repro.cli synth  <spec.v | benchmark-name> [options]
    python -m repro.cli bench  [name ...]
    python -m repro.cli timing report <spec> [--clocking NAME]
    python -m repro.cli timing sweep  <spec> [--widths N ...]
    python -m repro.cli validate <tile-name ...>
    python -m repro.cli library
    python -m repro.cli defects sample [options]
    python -m repro.cli trace export <trace.json> [--format chrome|prom]
    python -m repro.cli trace tail [--url URL --max N --timeout S]
    python -m repro.cli serve  [--port N --store DIR --workers N
                                --log-json --log-level LEVEL]
    python -m repro.cli submit <spec.v | benchmark-name> [--wait]
    python -m repro.cli jobs   [ID]

``synth`` runs the 8-step flow and writes .sqd/.svg artifacts
(``--json`` emits the structured, ``schema_version``-stamped design
report instead of the one-line summary); ``bench`` prints Table-1
style rows; ``timing report`` runs static timing analysis on a design
under one clocking scheme, and ``timing sweep`` explores the
area--latency trade-off across all registered schemes (the Pareto
front); ``validate`` runs the physics operational check on library
tiles; ``library`` lists the Bestagon designs; ``defects sample``
generates a random defective surface for defect-aware runs (``synth
--defects surface.json``); ``trace export`` converts a ``--trace-json``
file to Chrome trace-event JSON (Perfetto) or Prometheus text
exposition.  ``--progress`` on any flow command streams live
single-line progress to stderr, and ``--workers N`` fans the
parallelizable steps out over processes.

``serve`` starts the design service (artifact store + job scheduler +
JSON HTTP API, versioned under ``/v1``); ``submit`` and ``jobs`` are
its thin clients.  ``synth --cache [DIR]`` serves repeat runs from the
artifact store directly, no server needed.  Ctrl-C anywhere exits with
status 130 and a one-line message, never a traceback.

The flow subcommands share their common options through parent parsers
(:func:`_trace_options`, :func:`_engine_options`), so ``--trace`` and
the engine knobs spell and behave identically everywhere.  Everything
the CLI touches comes from the stable :mod:`repro.api` facade.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
import urllib.error
import urllib.request

from repro import api
from repro.service.http import DEFAULT_PORT as _DEFAULT_PORT

_DEFAULT_URL = f"http://127.0.0.1:{_DEFAULT_PORT}"


def _load_specification(source: str) -> tuple[str, str]:
    """(verilog text, name), exiting with a CLI-friendly message."""
    try:
        return api.load_specification(source)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error)) from None


def _configuration(args: argparse.Namespace) -> api.FlowConfiguration:
    """Flow configuration from the shared engine/defect options."""
    defects = None
    if getattr(args, "defects", None):
        try:
            defects = api.SurfaceDefects.load(args.defects)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"cannot load defects from '{args.defects}': {error}"
            ) from None
    try:
        return api.FlowConfiguration(
            engine=args.engine,
            exact_engine=getattr(args, "exact_engine", "quickexact"),
            clocking=getattr(args, "clocking", "columnar-rows"),
            exact_conflict_limit=args.conflict_limit,
            exact_time_limit_seconds=args.time_limit,
            timing=getattr(args, "timing", False),
            defects=defects,
            workers=getattr(args, "workers", 1),
            learn=getattr(args, "learn", False),
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _design(
    args: argparse.Namespace,
    verilog: str,
    name: str,
    config: api.FlowConfiguration,
) -> api.DesignResult:
    """Run the flow, with live progress when ``--progress`` is set."""
    cache = getattr(args, "cache", None)
    if getattr(args, "progress", False):
        with api.progress_scope(api.LineProgressReporter()):
            return api.design(
                verilog, name=name, configuration=config, cache=cache
            )
    return api.design(verilog, name=name, configuration=config, cache=cache)


def _report_trace(args: argparse.Namespace, result: api.DesignResult) -> None:
    if args.trace:
        print()
        print(api.trace_report(result))
    if args.trace_json:
        with open(args.trace_json, "w", encoding="utf-8") as handle:
            handle.write(api.trace_json(result))
        print(f"wrote {args.trace_json}")


def cmd_synth(args: argparse.Namespace) -> int:
    verilog, name = _load_specification(args.spec)
    result = _design(args, verilog, name, _configuration(args))
    if args.json:
        print(json.dumps(result.report(), indent=1, sort_keys=True))
    else:
        print(result.summary())
        if result.timing is not None:
            print(result.timing.summary())
    if result.defect_report is not None and not args.json:
        print(result.defect_report.summary())
    if args.ascii:
        print()
        print(api.layout_to_ascii(result.layout))
    _report_trace(args, result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_sqd())
        print(f"wrote {args.output}")
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(api.layout_to_svg(result.layout))
        print(f"wrote {args.svg}")
    ok = result.equivalence and result.equivalence.equivalent
    if result.defect_report is not None and not result.defect_report.operational:
        ok = False
    return 0 if ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    names = args.names or [
        "xor2", "xnor2", "par_gen", "mux21", "par_check",
        "xor5_r1", "c17", "majority",
    ]
    config = _configuration(args)
    status = 0
    for name in names:
        verilog, _ = _load_specification(name)
        try:
            result = _design(args, verilog, name, config)
        except Exception as error:
            print(f"{name:15s} failed: {error}")
            status = 1
            continue
        print(api.format_table1_row(
            name, result.width, result.height,
            result.num_sidbs, result.area_nm2,
        ))
        _report_trace(args, result)
    return status


def cmd_timing_report(args: argparse.Namespace) -> int:
    verilog, name = _load_specification(args.spec)
    config = _configuration(args)
    result = _design(args, verilog, name, config)
    report = result.timing
    if report is None:
        report = api.analyze_timing(
            result.layout, config.clocking, name=name
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
        return 0
    print(result.summary())
    print(report.summary())
    path = " -> ".join(f"({c.x},{c.y})" for c in report.critical_path)
    print(f"critical path: {path}")
    _report_trace(args, result)
    return 0


def cmd_timing_sweep(args: argparse.Namespace) -> int:
    verilog, name = _load_specification(args.spec)
    exploration = api.explore_clocking(
        verilog,
        name=name,
        widths=args.widths or None,
    )
    if args.json:
        print(json.dumps(exploration.to_dict(), indent=1, sort_keys=True))
        return 0
    print(exploration.render_table())
    front = exploration.front()
    print(
        f"pareto front: {len(front)} of {len(exploration.points)} points"
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    library = api.BestagonLibrary()
    names = args.names or ["wire_NW_SW", "inv_NW_SW", "and_SE", "or_SE"]
    status = 0
    for name in names:
        report = library.validate(name)
        correct = sum(p.correct for p in report.patterns)
        verdict = "operational" if report.operational else "NOT operational"
        print(f"{name:16s} {verdict} ({correct}/{len(report.patterns)} patterns)")
        if not report.operational:
            status = 1
    return status


def cmd_library(args: argparse.Namespace) -> int:
    library = api.BestagonLibrary()
    for name in library.names():
        design = library.design(name)
        status = "motifs-validated" if design.validated_motifs else "assembled"
        print(f"{name:16s} {design.num_sidbs:3d} SiDBs  "
              f"in:{','.join(p.value for p in design.input_ports) or '-':6s}"
              f" out:{','.join(p.value for p in design.output_ports) or '-':6s}"
              f"  [{status}]")
    return 0


def cmd_defects_sample(args: argparse.Namespace) -> int:
    surface = api.SurfaceDefects.sample(
        columns=args.columns,
        rows=args.rows,
        density_per_nm2=args.density,
        seed=args.seed,
        charged_fraction=args.charged_fraction,
    )
    charged = sum(1 for d in surface if d.is_charged)
    if args.output:
        surface.save(args.output)
        print(
            f"wrote {args.output}: {len(surface)} defects "
            f"({charged} charged) on a {args.columns}x{args.rows} region"
        )
    else:
        print(surface.to_json())
    return 0


def _learn_shards_dir(args: argparse.Namespace) -> str:
    explicit = getattr(args, "data", None) or getattr(args, "out", None)
    if explicit:
        return explicit
    return str(api.default_learn_dir() / "shards")


def cmd_learn_collect(args: argparse.Namespace) -> int:
    store = None
    if args.store:
        store = api.ArtifactStore(root=args.store)
    stats = api.collect_canvas_examples(
        directory=_learn_shards_dir(args),
        store=store,
        samples=args.samples,
        seed=args.seed,
    )
    for name, count in stats["per_problem"].items():
        print(f"{name}: {count} examples")
    print(f"total: {stats['examples']} examples")
    if stats["shard"]:
        print(f"wrote {stats['shard']}")
    for digest in stats["persisted_digests"]:
        print(f"stored blob {digest[:12]}")
    return 0


def cmd_learn_train(args: argparse.Namespace) -> int:
    source = _learn_shards_dir(args)
    try:
        dataset = api.load_examples(source)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot load examples from '{source}': {error}")
    if not len(dataset.features):
        raise SystemExit(f"no examples under '{source}'; "
                         "run 'repro learn collect' first")
    train, held_out = dataset.split(holdout=args.holdout, seed=args.seed)
    model = api.train_surrogate(
        train.features, train.fractions(), seed=args.seed
    )
    out = args.out or str(api.default_learn_dir() / "model.json")
    model.save(out)
    print(f"trained on {len(train.features)} examples "
          f"({len(dataset.features)} total)")
    if len(held_out.features):
        metrics = api.evaluate_surrogate(
            model, held_out.features, held_out.labels()
        )
        print(f"held-out: auc={metrics['auc']:.4f} "
              f"accuracy={metrics['accuracy']:.4f} "
              f"log_loss={metrics['log_loss']:.4f}")
    print(f"wrote {out}")
    return 0


def cmd_learn_eval(args: argparse.Namespace) -> int:
    model_path = args.model or str(api.default_learn_dir() / "model.json")
    try:
        model = api.SurrogateModel.load(model_path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot load model '{model_path}': {error}")
    source = _learn_shards_dir(args)
    try:
        dataset = api.load_examples(source)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot load examples from '{source}': {error}")
    metrics = api.evaluate_surrogate(
        model, dataset.features, dataset.labels()
    )
    print(json.dumps(metrics, indent=1, sort_keys=True))
    return 0


def cmd_learn_info(args: argparse.Namespace) -> int:
    model_path = args.model or str(api.default_learn_dir() / "model.json")
    document: dict = {
        "feature_version": api.FEATURE_VERSION,
        "feature_names": len(api.FEATURE_NAMES),
        "dataset_schema_version": api.DATASET_SCHEMA_VERSION,
        "model_schema_version": api.MODEL_SCHEMA_VERSION,
        "learn_dir": str(api.default_learn_dir()),
    }
    try:
        model = api.SurrogateModel.load(model_path)
        document["model"] = {
            "path": model_path,
            "trained_on": model.trained_on,
            "stumps": len(model.stumps),
            "seed": model.seed,
        }
    except (OSError, ValueError):
        document["model"] = None
    source = _learn_shards_dir(args)
    try:
        dataset = api.load_examples(source)
        labels = dataset.labels()
        document["dataset"] = {
            "source": source,
            "examples": int(len(dataset.features)),
            "positives": int(labels.sum()),
        }
    except (OSError, ValueError):
        document["dataset"] = None
    print(json.dumps(document, indent=1, sort_keys=True))
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    try:
        with open(args.trace, encoding="utf-8") as handle:
            span = api.trace_from_json(handle.read())
    except OSError as error:
        raise SystemExit(f"cannot read trace '{args.trace}': {error}") from None
    except (ValueError, KeyError) as error:
        raise SystemExit(
            f"'{args.trace}' is not a repro trace JSON file "
            f"(produce one with --trace-json): {error}"
        ) from None
    if args.format == "chrome":
        text = api.to_chrome_trace(span)
    else:
        text = api.to_prometheus(span)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def cmd_trace_tail(args: argparse.Namespace) -> int:
    """Stream a running service's flight recorder (SSE) to stdout."""
    query = f"replay={args.replay}"
    if args.max is not None:
        query += f"&max_events={args.max}"
    if args.timeout is not None:
        query += f"&timeout_seconds={args.timeout}"
    url = f"{args.url}/v1/events?{query}"
    request = urllib.request.Request(
        url, headers={"Accept": "text/event-stream"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            event_name = None
            data_lines: list[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):  # keepalive comment
                    continue
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line and data_lines:
                    payload = "\n".join(data_lines)
                    try:
                        record = json.loads(payload)
                    except ValueError:
                        record = {"name": event_name, "attributes": {}}
                    attributes = record.get("attributes") or {}
                    detail = "  ".join(
                        f"{key}={value}"
                        for key, value in sorted(attributes.items())
                    )
                    name = record.get("name") or event_name or "?"
                    stamp = record.get("timestamp")
                    prefix = f"{stamp:12.3f}  " if stamp is not None else ""
                    print(f"{prefix}{name}  {detail}".rstrip(), flush=True)
                    event_name = None
                    data_lines = []
    except urllib.error.HTTPError as error:
        raise SystemExit(
            f"service error ({error.code}) at {url}"
        ) from None
    except urllib.error.URLError as error:
        raise SystemExit(
            f"cannot reach design service at {args.url}: {error.reason} "
            "(is 'repro serve' running?)"
        ) from None
    return 0


def _http_json(
    url: str,
    payload: dict | None = None,
    method: str | None = None,
) -> dict:
    """One JSON request to the design service, with friendly errors."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        try:
            message = json.loads(error.read().decode("utf-8"))["error"]
        except Exception:
            message = str(error)
        raise SystemExit(f"service error ({error.code}): {message}") from None
    except urllib.error.URLError as error:
        raise SystemExit(
            f"cannot reach design service at {url}: {error.reason} "
            "(is 'repro serve' running?)"
        ) from None


def _format_job(job: dict) -> str:
    flags = []
    if job.get("cache_hit"):
        flags.append("cache-hit")
    if job.get("attached"):
        flags.append(f"attached={job['attached']}")
    error = job.get("error")
    if error:
        flags.append(f"{error.get('kind', 'error')}: {error.get('message')}")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    return (
        f"{job['id']}  {job['status']:9s} {job.get('name') or '-':12s} "
        f"{job['digest'][:12]}{suffix}"
    )


class _DrainSignal(BaseException):
    """Raised out of ``serve_forever`` by the SIGTERM handler.

    A ``BaseException`` so no handler between the signal frame and
    ``cmd_serve`` can swallow it.
    """


def cmd_serve(args: argparse.Namespace) -> int:
    max_queued = args.max_queued if args.max_queued >= 0 else None
    if args.log_json:
        # Configure before the service constructs: scheduler/pool
        # startup already emits correlated lifecycle records.
        api.configure_logging(level=args.log_level)
    service = api.DesignService(
        store=args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        verbose=True,
        max_queued=max_queued,
    )
    def _on_sigterm(signum, frame):
        raise _DrainSignal()

    try:
        # Only the main thread may install handlers; embedded callers
        # (tests driving cmd_serve from a thread) just skip the drain
        # path.  Installed before the banner so a supervisor reacting
        # to the banner can already deliver SIGTERM safely.
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass
    try:
        # The banner prints inside the guarded region: a supervisor
        # may deliver SIGTERM the moment it sees the banner, and the
        # drain handler must already cover that instant.
        store_root = service.store.root
        print(
            f"repro design service {api.package_version()} on "
            f"{service.url} (store: {store_root}, {args.workers} "
            f"workers, max_queued={max_queued})",
            file=sys.stderr,
        )
        service.serve_forever()
    except _DrainSignal:
        print(
            f"SIGTERM: draining (up to {args.drain_seconds:.0f}s) ...",
            file=sys.stderr,
        )
        service.close(drain=True, drain_timeout=args.drain_seconds)
        print("drained, bye", file=sys.stderr)
        return 0
    finally:
        service.close()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    verilog, name = _load_specification(args.spec)
    options: dict = {
        "engine": args.engine,
        "exact_engine": getattr(args, "exact_engine", "quickexact"),
        "clocking": getattr(args, "clocking", "columnar-rows"),
        "exact_conflict_limit": args.conflict_limit,
        "exact_time_limit_seconds": args.time_limit,
        "timing": getattr(args, "timing", False),
        "learn": getattr(args, "learn", False),
    }
    if getattr(args, "defects", None):
        try:
            surface = api.SurfaceDefects.load(args.defects)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"cannot load defects from '{args.defects}': {error}"
            ) from None
        options["defects"] = [defect.to_dict() for defect in surface]
    document = _http_json(
        f"{args.url}/v1/jobs",
        payload={
            "specification": verilog,
            "name": name,
            "options": options,
            "priority": args.priority,
            "timeout": args.timeout,
        },
    )
    job = document["job"]
    print(_format_job(job))
    if not args.wait:
        return 0
    while job["status"] not in ("done", "failed", "cancelled"):
        time.sleep(args.poll_seconds)
        job = _http_json(f"{args.url}/v1/jobs/{job['id']}")
    print(_format_job(job))
    if job["status"] != "done":
        return 1
    if args.output:
        sqd_url = f"{args.url}{job['artifacts']['sqd']}"
        request = urllib.request.Request(sqd_url)
        with urllib.request.urlopen(request, timeout=60) as response:
            data = response.read()
        with open(args.output, "wb") as handle:
            handle.write(data)
        print(f"wrote {args.output} ({len(data)} bytes)")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    if args.id:
        job = _http_json(f"{args.url}/v1/jobs/{args.id}")
        print(json.dumps(job, indent=1, sort_keys=True))
        return 0
    document = _http_json(f"{args.url}/v1/jobs")
    jobs = document["jobs"]
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(_format_job(job))
    return 0


def _benchmark_name(value: str) -> str:
    """Argparse type: a built-in benchmark name, rejected with choices."""
    if value not in api.BENCHMARK_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown benchmark {value!r} "
            f"(choose from {', '.join(sorted(api.BENCHMARK_NAMES))})"
        )
    return value


def _trace_options() -> argparse.ArgumentParser:
    """Parent parser: observability options shared by flow commands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--trace", action="store_true",
                       help="print the observability trace tree")
    group.add_argument("--trace-json", metavar="PATH",
                       help="write the observability trace as JSON")
    group.add_argument("--progress", action="store_true",
                       help="live single-line progress on stderr")
    return parent


def _engine_options() -> argparse.ArgumentParser:
    """Parent parser: engine knobs shared by flow commands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("physical design engine")
    group.add_argument("--engine", default="auto",
                       choices=[engine.value for engine in api.Engine])
    group.add_argument("--exact-engine", default="quickexact",
                       choices=list(api.EXACT_ENGINES),
                       help="exact ground-state solver for operational "
                            "simulations (default: quickexact)")
    group.add_argument("--clocking", default="columnar-rows",
                       choices=sorted(api.CLOCKING_SCHEMES),
                       help="clocking scheme the layout is zoned under "
                            "(default: columnar-rows, the paper's native "
                            "row discipline)")
    group.add_argument("--timing", action="store_true",
                       help="run static timing analysis and report "
                            "latency/throughput with the result")
    group.add_argument("--conflict-limit", type=int, default=400_000)
    group.add_argument("--time-limit", type=float, default=None)
    group.add_argument("--defects", metavar="PATH",
                       help="design around the surface defects in PATH "
                            "(JSON, see 'defects sample')")
    group.add_argument("--workers", type=int, default=1,
                       help="worker processes for parallelizable steps "
                            "(results are identical across counts)")
    group.add_argument("--learn", action="store_true",
                       help="collect surrogate training examples from "
                            "this run's physics evaluations (see "
                            "'repro learn'); never changes the result")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SiDB design automation (Bestagon flow)"
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {api.package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    trace_options = _trace_options()
    engine_options = _engine_options()

    synth = sub.add_parser("synth", help="run the 8-step flow",
                           parents=[engine_options, trace_options])
    synth.add_argument("spec", help="Verilog file or benchmark name")
    synth.add_argument("-o", "--output", help="write .sqd design file")
    synth.add_argument("--svg", help="write SVG rendering")
    synth.add_argument("--ascii", action="store_true",
                       help="print ASCII layout")
    synth.add_argument("--cache", nargs="?", const=True, metavar="DIR",
                       help="serve repeat runs from the design-artifact "
                            "store (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro/designs)")
    synth.add_argument("--json", action="store_true",
                       help="print the structured design report as JSON "
                            "instead of the one-line summary")
    synth.set_defaults(handler=cmd_synth)

    timing = sub.add_parser(
        "timing", help="static timing analysis of clocked layouts"
    )
    timing_sub = timing.add_subparsers(dest="timing_command", required=True)
    timing_report = timing_sub.add_parser(
        "report",
        help="design one circuit and report its timing",
        parents=[engine_options, trace_options],
        description="Run the flow with static timing analysis enabled "
                    "and print latency (clock phases and ns), "
                    "throughput, worst slack, and the critical path "
                    "under the chosen clocking scheme.",
    )
    timing_report.add_argument("spec",
                               help="Verilog file or benchmark name")
    timing_report.add_argument("--json", action="store_true",
                               help="print the timing report as JSON")
    timing_report.set_defaults(timing=True, handler=cmd_timing_report)
    timing_sweep = timing_sub.add_parser(
        "sweep",
        help="area-latency Pareto sweep over clocking schemes",
        description="Design once, then re-zone the layout under every "
                    "registered clocking scheme (and optionally "
                    "re-place at bounded widths) to chart the "
                    "area-latency trade-off; Pareto-optimal points "
                    "are marked.",
    )
    timing_sweep.add_argument("spec",
                              help="Verilog file or benchmark name")
    timing_sweep.add_argument("--widths", type=int, nargs="*",
                              metavar="N",
                              help="also re-place heuristically at these "
                                   "max widths (native scheme only)")
    timing_sweep.add_argument("--json", action="store_true",
                              help="print the exploration as JSON")
    timing_sweep.set_defaults(handler=cmd_timing_sweep)

    bench = sub.add_parser("bench", help="Table-1 style rows",
                           parents=[engine_options, trace_options])
    bench.add_argument("names", nargs="*",
                       type=_benchmark_name,
                       metavar="name",
                       help="benchmark names "
                            f"({', '.join(sorted(api.BENCHMARK_NAMES))})")
    bench.set_defaults(conflict_limit=150_000, handler=cmd_bench)

    validate = sub.add_parser("validate", help="physics-check library tiles",
                              parents=[trace_options])
    validate.add_argument("names", nargs="*")
    validate.set_defaults(handler=cmd_validate)

    library = sub.add_parser("library", help="list Bestagon tile designs")
    library.set_defaults(handler=cmd_library)

    trace = sub.add_parser("trace", help="trace-file utilities")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="convert a --trace-json file to a standard format",
        description="Convert a trace written by --trace-json into the "
                    "Chrome trace-event format (load in Perfetto / "
                    "chrome://tracing) or Prometheus text exposition.",
    )
    export.add_argument("trace", help="trace JSON file (from --trace-json)")
    export.add_argument("--format", choices=["chrome", "prom"],
                        default="chrome",
                        help="output format (default: chrome)")
    export.add_argument("-o", "--output", metavar="PATH",
                        help="write here instead of stdout")
    export.set_defaults(handler=cmd_trace_export)
    tail = trace_sub.add_parser(
        "tail",
        help="stream a running service's live events (SSE)",
        description="Subscribe to GET /v1/events on a running service "
                    "and print one line per flight-recorder event "
                    "(job lifecycle, worker churn, drain) until "
                    "interrupted or the limits below are hit.",
    )
    tail.add_argument("--url", default=_DEFAULT_URL,
                      help="service base URL")
    tail.add_argument("--replay", type=int, default=16,
                      help="retained events to replay first (default 16)")
    tail.add_argument("--max", type=int, default=None, metavar="N",
                      help="stop after N events")
    tail.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="stop after S seconds")
    tail.set_defaults(handler=cmd_trace_tail)

    defects = sub.add_parser("defects", help="surface-defect utilities")
    defects_sub = defects.add_subparsers(dest="defects_command", required=True)
    sample = defects_sub.add_parser(
        "sample", help="generate a random defective surface"
    )
    sample.add_argument("--columns", type=int, default=120,
                        help="region width in lattice columns")
    sample.add_argument("--rows", type=int, default=92,
                        help="region height in lattice sub-rows")
    sample.add_argument("--density", type=float, default=1e-4,
                        help="defect density per nm^2")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--charged-fraction", type=float, default=0.5,
                        help="fraction of charged (vs. structural) defects")
    sample.add_argument("-o", "--output", metavar="PATH",
                        help="write the surface as JSON (default: stdout)")
    sample.set_defaults(handler=cmd_defects_sample)

    learn = sub.add_parser(
        "learn",
        help="surrogate guidance: collect examples, train, evaluate",
        description="The learned-guidance flywheel: 'collect' labels "
                    "bootstrap candidates through the ground-state "
                    "oracle into dataset shards, 'train' fits the "
                    "pure-numpy surrogate, 'eval' scores it on a "
                    "dataset, 'info' shows versions and paths.  The "
                    "surrogate only re-ranks and prunes candidates "
                    "ahead of physics; every shipped verdict still "
                    "comes from the exact ground-state oracle.",
    )
    learn_sub = learn.add_subparsers(dest="learn_command", required=True)
    learn_collect = learn_sub.add_parser(
        "collect", help="physics-label bootstrap candidates into shards")
    learn_collect.add_argument("--out", metavar="DIR",
                               help="shard directory (default: "
                                    "$REPRO_LEARN_DIR/shards)")
    learn_collect.add_argument("--store", metavar="DIR",
                               help="also persist shards content-"
                                    "addressed into this artifact store")
    learn_collect.add_argument("--samples", type=int, default=160,
                               help="labeled candidates per bootstrap "
                                    "problem (default 160)")
    learn_collect.add_argument("--seed", type=int, default=0)
    learn_collect.set_defaults(handler=cmd_learn_collect)
    learn_train = learn_sub.add_parser(
        "train", help="fit the surrogate on collected shards")
    learn_train.add_argument("--data", metavar="PATH",
                             help="shard file or directory (default: "
                                  "$REPRO_LEARN_DIR/shards)")
    learn_train.add_argument("--out", dest="out", metavar="PATH",
                             help="model output path (default: "
                                  "$REPRO_LEARN_DIR/model.json)")
    learn_train.add_argument("--holdout", type=float, default=0.25,
                             help="held-out fraction for the reported "
                                  "metrics (default 0.25)")
    learn_train.add_argument("--seed", type=int, default=0)
    learn_train.set_defaults(handler=cmd_learn_train, data=None)
    learn_eval = learn_sub.add_parser(
        "eval", help="score a model on a dataset")
    learn_eval.add_argument("--model", metavar="PATH",
                            help="model file (default: "
                                 "$REPRO_LEARN_DIR/model.json)")
    learn_eval.add_argument("--data", metavar="PATH",
                            help="shard file or directory (default: "
                                 "$REPRO_LEARN_DIR/shards)")
    learn_eval.set_defaults(handler=cmd_learn_eval)
    learn_info = learn_sub.add_parser(
        "info", help="schema versions, model + dataset summary")
    learn_info.add_argument("--model", metavar="PATH")
    learn_info.add_argument("--data", metavar="PATH")
    learn_info.set_defaults(handler=cmd_learn_info)

    serve = sub.add_parser(
        "serve",
        help="run the design service (artifact store + job queue + HTTP)",
        description="Serve the JSON design API (versioned under /v1): "
                    "POST /v1/jobs, GET /v1/jobs, "
                    "GET /v1/artifacts/<digest>/<name>, GET /v1/metrics, "
                    "GET /v1/healthz; unversioned paths remain as "
                    "deprecated aliases.  Results are cached in the "
                    "artifact store; identical in-flight submissions "
                    "share one execution.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=_DEFAULT_PORT,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="artifact store root (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro/designs)")
    serve.add_argument("--workers", type=int, default=2,
                       help="warm pool size (long-lived design worker "
                            "processes)")
    serve.add_argument("--max-queued", type=int, default=256,
                       help="admission-queue bound; a full queue answers "
                            "HTTP 429 with Retry-After (default 256, "
                            "negative disables the bound)")
    serve.add_argument("--drain-seconds", type=float, default=30.0,
                       help="on SIGTERM, let admitted jobs finish for up "
                            "to this long before cancelling (default 30)")
    serve.add_argument("--log-json", action="store_true",
                       help="structured JSON-lines logs on stderr "
                            "(request/job/worker lifecycle with trace "
                            "correlation; workers log here too)")
    serve.add_argument("--log-level", default="info",
                       choices=sorted(api.LOG_LEVELS),
                       help="minimum level for --log-json "
                            "(default: info)")
    serve.set_defaults(handler=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a design job to a running service",
        parents=[engine_options],
    )
    submit.add_argument("spec", help="Verilog file or benchmark name")
    submit.add_argument("--url", default=_DEFAULT_URL,
                        help="service base URL")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs earlier")
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes")
    submit.add_argument("--poll-seconds", type=float, default=0.5,
                        help=argparse.SUPPRESS)
    submit.add_argument("-o", "--output", metavar="PATH",
                        help="with --wait: write the .sqd artifact here")
    submit.set_defaults(handler=cmd_submit)

    jobs = sub.add_parser("jobs", help="list the service's jobs")
    jobs.add_argument("id", nargs="?", help="show one job as JSON")
    jobs.add_argument("--url", default=_DEFAULT_URL,
                      help="service base URL")
    jobs.set_defaults(handler=cmd_jobs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
