"""Command-line interface for the SiDB design flow.

    python -m repro.cli synth  <spec.v | benchmark-name> [options]
    python -m repro.cli bench  [name ...]
    python -m repro.cli validate <tile-name ...>
    python -m repro.cli library
    python -m repro.cli defects sample [options]
    python -m repro.cli trace export <trace.json> [--format chrome|prom]

``synth`` runs the 8-step flow and writes .sqd/.svg artifacts; ``bench``
prints Table-1 style rows; ``validate`` runs the physics operational
check on library tiles; ``library`` lists the Bestagon designs;
``defects sample`` generates a random defective surface for
defect-aware runs (``synth --defects surface.json``); ``trace export``
converts a ``--trace-json`` file to Chrome trace-event JSON (Perfetto)
or Prometheus text exposition.  ``--progress`` on any flow command
streams live single-line progress to stderr, and ``--workers N`` fans
the parallelizable steps out over processes.

The flow subcommands share their common options through parent parsers
(:func:`_trace_options`, :func:`_engine_options`), so ``--trace`` and
the engine knobs spell and behave identically everywhere.  Everything
the CLI touches comes from the stable :mod:`repro.api` facade.
"""

from __future__ import annotations

import argparse
import sys

from repro import api


def _load_specification(source: str) -> tuple[str, str]:
    """(verilog text, name), exiting with a CLI-friendly message."""
    try:
        return api.load_specification(source)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error)) from None


def _configuration(args: argparse.Namespace) -> api.FlowConfiguration:
    """Flow configuration from the shared engine/defect options."""
    defects = None
    if getattr(args, "defects", None):
        try:
            defects = api.SurfaceDefects.load(args.defects)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"cannot load defects from '{args.defects}': {error}"
            ) from None
    return api.FlowConfiguration(
        engine=args.engine,
        exact_conflict_limit=args.conflict_limit,
        exact_time_limit_seconds=args.time_limit,
        defects=defects,
        workers=getattr(args, "workers", 1),
    )


def _design(
    args: argparse.Namespace,
    verilog: str,
    name: str,
    config: api.FlowConfiguration,
) -> api.DesignResult:
    """Run the flow, with live progress when ``--progress`` is set."""
    if getattr(args, "progress", False):
        with api.progress_scope(api.LineProgressReporter()):
            return api.design(verilog, name=name, configuration=config)
    return api.design(verilog, name=name, configuration=config)


def _report_trace(args: argparse.Namespace, result: api.DesignResult) -> None:
    if args.trace:
        print()
        print(api.trace_report(result))
    if args.trace_json:
        with open(args.trace_json, "w", encoding="utf-8") as handle:
            handle.write(api.trace_json(result))
        print(f"wrote {args.trace_json}")


def cmd_synth(args: argparse.Namespace) -> int:
    verilog, name = _load_specification(args.spec)
    result = _design(args, verilog, name, _configuration(args))
    print(result.summary())
    if result.defect_report is not None:
        print(result.defect_report.summary())
    if args.ascii:
        print()
        print(api.layout_to_ascii(result.layout))
    _report_trace(args, result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_sqd())
        print(f"wrote {args.output}")
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(api.layout_to_svg(result.layout))
        print(f"wrote {args.svg}")
    ok = result.equivalence and result.equivalence.equivalent
    if result.defect_report is not None and not result.defect_report.operational:
        ok = False
    return 0 if ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    names = args.names or [
        "xor2", "xnor2", "par_gen", "mux21", "par_check",
        "xor5_r1", "c17", "majority",
    ]
    config = _configuration(args)
    status = 0
    for name in names:
        verilog, _ = _load_specification(name)
        try:
            result = _design(args, verilog, name, config)
        except Exception as error:
            print(f"{name:15s} failed: {error}")
            status = 1
            continue
        print(api.format_table1_row(
            name, result.width, result.height,
            result.num_sidbs, result.area_nm2,
        ))
        _report_trace(args, result)
    return status


def cmd_validate(args: argparse.Namespace) -> int:
    library = api.BestagonLibrary()
    names = args.names or ["wire_NW_SW", "inv_NW_SW", "and_SE", "or_SE"]
    status = 0
    for name in names:
        report = library.validate(name)
        correct = sum(p.correct for p in report.patterns)
        verdict = "operational" if report.operational else "NOT operational"
        print(f"{name:16s} {verdict} ({correct}/{len(report.patterns)} patterns)")
        if not report.operational:
            status = 1
    return status


def cmd_library(args: argparse.Namespace) -> int:
    library = api.BestagonLibrary()
    for name in library.names():
        design = library.design(name)
        status = "motifs-validated" if design.validated_motifs else "assembled"
        print(f"{name:16s} {design.num_sidbs:3d} SiDBs  "
              f"in:{','.join(p.value for p in design.input_ports) or '-':6s}"
              f" out:{','.join(p.value for p in design.output_ports) or '-':6s}"
              f"  [{status}]")
    return 0


def cmd_defects_sample(args: argparse.Namespace) -> int:
    surface = api.SurfaceDefects.sample(
        columns=args.columns,
        rows=args.rows,
        density_per_nm2=args.density,
        seed=args.seed,
        charged_fraction=args.charged_fraction,
    )
    charged = sum(1 for d in surface if d.is_charged)
    if args.output:
        surface.save(args.output)
        print(
            f"wrote {args.output}: {len(surface)} defects "
            f"({charged} charged) on a {args.columns}x{args.rows} region"
        )
    else:
        print(surface.to_json())
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    try:
        with open(args.trace, encoding="utf-8") as handle:
            span = api.trace_from_json(handle.read())
    except OSError as error:
        raise SystemExit(f"cannot read trace '{args.trace}': {error}") from None
    except (ValueError, KeyError) as error:
        raise SystemExit(
            f"'{args.trace}' is not a repro trace JSON file "
            f"(produce one with --trace-json): {error}"
        ) from None
    if args.format == "chrome":
        text = api.to_chrome_trace(span)
    else:
        text = api.to_prometheus(span)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _benchmark_name(value: str) -> str:
    """Argparse type: a built-in benchmark name, rejected with choices."""
    if value not in api.BENCHMARK_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown benchmark {value!r} "
            f"(choose from {', '.join(sorted(api.BENCHMARK_NAMES))})"
        )
    return value


def _trace_options() -> argparse.ArgumentParser:
    """Parent parser: observability options shared by flow commands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--trace", action="store_true",
                       help="print the observability trace tree")
    group.add_argument("--trace-json", metavar="PATH",
                       help="write the observability trace as JSON")
    group.add_argument("--progress", action="store_true",
                       help="live single-line progress on stderr")
    return parent


def _engine_options() -> argparse.ArgumentParser:
    """Parent parser: engine knobs shared by flow commands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("physical design engine")
    group.add_argument("--engine", default="auto",
                       choices=[engine.value for engine in api.Engine])
    group.add_argument("--conflict-limit", type=int, default=400_000)
    group.add_argument("--time-limit", type=float, default=None)
    group.add_argument("--defects", metavar="PATH",
                       help="design around the surface defects in PATH "
                            "(JSON, see 'defects sample')")
    group.add_argument("--workers", type=int, default=1,
                       help="worker processes for parallelizable steps "
                            "(results are identical across counts)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SiDB design automation (Bestagon flow)"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    trace_options = _trace_options()
    engine_options = _engine_options()

    synth = sub.add_parser("synth", help="run the 8-step flow",
                           parents=[engine_options, trace_options])
    synth.add_argument("spec", help="Verilog file or benchmark name")
    synth.add_argument("-o", "--output", help="write .sqd design file")
    synth.add_argument("--svg", help="write SVG rendering")
    synth.add_argument("--ascii", action="store_true",
                       help="print ASCII layout")
    synth.set_defaults(handler=cmd_synth)

    bench = sub.add_parser("bench", help="Table-1 style rows",
                           parents=[engine_options, trace_options])
    bench.add_argument("names", nargs="*",
                       type=_benchmark_name,
                       metavar="name",
                       help="benchmark names "
                            f"({', '.join(sorted(api.BENCHMARK_NAMES))})")
    bench.set_defaults(conflict_limit=150_000, handler=cmd_bench)

    validate = sub.add_parser("validate", help="physics-check library tiles",
                              parents=[trace_options])
    validate.add_argument("names", nargs="*")
    validate.set_defaults(handler=cmd_validate)

    library = sub.add_parser("library", help="list Bestagon tile designs")
    library.set_defaults(handler=cmd_library)

    trace = sub.add_parser("trace", help="trace-file utilities")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="convert a --trace-json file to a standard format",
        description="Convert a trace written by --trace-json into the "
                    "Chrome trace-event format (load in Perfetto / "
                    "chrome://tracing) or Prometheus text exposition.",
    )
    export.add_argument("trace", help="trace JSON file (from --trace-json)")
    export.add_argument("--format", choices=["chrome", "prom"],
                        default="chrome",
                        help="output format (default: chrome)")
    export.add_argument("-o", "--output", metavar="PATH",
                        help="write here instead of stdout")
    export.set_defaults(handler=cmd_trace_export)

    defects = sub.add_parser("defects", help="surface-defect utilities")
    defects_sub = defects.add_subparsers(dest="defects_command", required=True)
    sample = defects_sub.add_parser(
        "sample", help="generate a random defective surface"
    )
    sample.add_argument("--columns", type=int, default=120,
                        help="region width in lattice columns")
    sample.add_argument("--rows", type=int, default=92,
                        help="region height in lattice sub-rows")
    sample.add_argument("--density", type=float, default=1e-4,
                        help="defect density per nm^2")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--charged-fraction", type=float, default=0.5,
                        help="fraction of charged (vs. structural) defects")
    sample.add_argument("-o", "--output", metavar="PATH",
                        help="write the surface as JSON (default: stdout)")
    sample.set_defaults(handler=cmd_defects_sample)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
