#!/usr/bin/env python3
"""Explore SiDB clocking: four-phase pipelines and super-tile planning.

Reproduces the Figure 2 mechanism (clocking by charge-population
modulation) on a zoned BDL wire, then shows how the 40 nm metal-pitch
rule turns a layout's rows into super-tile clock zones (Figure 4).

    python examples/clocking_exploration.py
"""

from repro import api


def pipeline_demo() -> None:
    print("=== four-phase clocked BDL wire (Figure 2) ===")
    wire = api.ClockedWire(
        pairs_per_zone=2,
        num_zones=4,
        parameters=api.SiDBSimulationParameters.bestagon(),
    )
    for bit in (False, True):
        print(f"\n  driving logic {int(bit)}:")
        history = wire.propagate(bit)
        for phase, reads in enumerate(history):
            cells = []
            for zone in range(wire.num_zones):
                if zone in reads:
                    bits = "".join(
                        "?" if v is None else str(int(v))
                        for v in reads[zone]
                    )
                    cells.append(f"z{zone}[{bits}]")
                else:
                    cells.append(f"z{zone}[··]")
            print(f"    phase {phase}: " + "  ".join(cells))
        print(f"    front arrived correctly: "
              f"{wire.front_arrived(history, bit)}")


def supertile_demo() -> None:
    print("\n=== super-tile planning on a real layout (Figure 4) ===")
    result = api.design("par_check")
    plan = result.supertiles
    print(f"  layout: {result.width} x {result.height} tiles")
    print(f"  minimum metal pitch: {api.MIN_METAL_PITCH_NM} nm; "
          f"tile row: 17.664 nm")
    print(f"  -> {plan.rows_per_zone} rows per electrode "
          f"({plan.zone_height_nm:.2f} nm)")
    for first, last in plan.electrode_rows():
        print(f"     electrode rows {first}-{last} "
              f"-> clock phase {plan.zone_of_row(first)}")
    print(f"  fabricable: {plan.is_fabricable}")


if __name__ == "__main__":
    pipeline_demo()
    supertile_demo()
