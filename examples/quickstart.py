#!/usr/bin/env python3
"""Quickstart: from a Verilog specification to a dot-accurate SiDB layout.

Runs the paper's complete 8-step flow on a 2:1 multiplexer and shows
every intermediate artifact: the optimized XAG, the Bestagon-mapped
netlist, the placed-and-routed hexagonal layout, the formal verification
verdict, the super-tile clocking plan and the final SiDB design file.

    python examples/quickstart.py
"""

from repro import api

VERILOG = """
module mux21 (in0, in1, sel, f);
  input in0, in1, sel;
  output f;
  assign f = sel ? in1 : in0;
endmodule
"""


def main() -> None:
    result = api.design(VERILOG, name="mux21")

    print("=== specification ===")
    print(f"  XAG: {result.specification.num_gates} gates, "
          f"depth {result.specification.depth()}")
    print(f"  after rewriting: {result.optimized.num_gates} gates")
    print(f"  Bestagon-mapped: {result.mapped.num_gates()} tiles-to-be "
          f"(depth {result.mapped.depth()})")

    print("\n=== gate-level layout (Columnar clocking, flow top->bottom) ===")
    print(api.layout_to_ascii(result.layout))
    print(f"  dimensions : {result.width} x {result.height} "
          f"= {result.area_tiles} tiles")
    print(f"  area       : {result.area_nm2:.2f} nm^2")
    print(f"  wire tiles : {result.layout.num_wire_tiles()}, "
          f"crossings: {result.layout.num_crossings()}")

    print("\n=== verification & design rules ===")
    print(f"  SAT equivalence check : "
          f"{'PASS' if result.equivalence.equivalent else 'FAIL'}")
    print(f"  DRC violations        : {len(result.drc_violations)}")
    print(f"  path-balanced (1/1 throughput): "
          f"{result.layout.is_path_balanced()}")

    print("\n=== super-tiles (40 nm metal pitch) ===")
    plan = result.supertiles
    print(f"  {plan.rows_per_zone} tile rows per clock electrode "
          f"({plan.zone_height_nm:.2f} nm)")

    print("\n=== dot-accurate SiDB layout ===")
    print(f"  {result.num_sidbs} SiDBs")
    path = "mux21.sqd"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.to_sqd())
    print(f"  SiQAD design file written to {path}")


if __name__ == "__main__":
    main()
