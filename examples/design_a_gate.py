#!/usr/bin/env python3
"""Design and validate an SiDB gate with the physics engine.

Demonstrates the paper's gate-design methodology (Section 4.1) with our
automated substitute for its RL agent:

1. build a BDL wire and watch both logic values propagate through the
   exhaustive ground-state engine;
2. simulate the Y-shaped OR-gate core over all input patterns using the
   paper's close/far input-perturber refinement;
3. let the stochastic canvas designer re-discover a missing dot of a
   known-good design.

    python examples/design_a_gate.py
"""

from repro import api

S = api.LatticeSite.from_row
PARAMS = api.SiDBSimulationParameters.bestagon()


def wire_demo() -> None:
    print("=== 1. BDL wire (3 pairs, pitch 6 rows) ===")
    sites, pairs = [], []
    for k in range(3):
        sites += [S(0, 6 * k), S(0, 6 * k + 2)]
        pairs.append(api.BdlPair(S(0, 6 * k), S(0, 6 * k + 2)))
    for bit, gap in ((0, 6), (1, 2)):
        layout = api.SidbLayout(sites + [S(0, -gap), S(0, 18)])
        ground = api.exhaustive_ground_state(layout, PARAMS)
        values = [
            api.read_bdl_pair(layout, ground.occupation(), p) for p in pairs
        ]
        print(f"  input {bit} (perturber {'close' if bit else 'far'}) "
              f"-> pairs read {[int(bool(v)) for v in values]}  "
              f"E = {ground.ground_energy:.4f} eV")


def or_gate_demo() -> None:
    print("\n=== 2. Y-shaped OR-gate core, all input patterns ===")
    core = api.core_parameters("or")
    dx1, dx2, og = core["dx1"], core["dx2"], core["og"]
    sites = []
    for sign in (-1, 1):
        c0, c1 = sign * (dx2 + dx1), sign * dx2
        sites += [S(c0, 0), S(c0, 2), S(c1, 6), S(c1, 8)]
    orow = 8 + og
    sites += [S(0, orow), S(0, orow + 2)]
    for c, r in core.get("extra", []):
        sites.append(S(c, r))
    sites.append(S(0, orow + 2 + core["gout"]))
    pair = api.BdlPair(S(0, orow), S(0, orow + 2))
    stim = dx2 + 2 * dx1
    for pattern in range(4):
        layout = api.SidbLayout(sites)
        layout.add(S(-stim, -2 if pattern & 1 else -6))
        layout.add(S(stim, -2 if (pattern >> 1) & 1 else -6))
        ground = api.exhaustive_ground_state(layout, PARAMS)
        value = api.read_bdl_pair(layout, ground.occupation(), pair)
        a, b = pattern & 1, (pattern >> 1) & 1
        print(f"  ({a} OR {b}) -> {int(bool(value))}")


def designer_demo() -> None:
    print("\n=== 3. Canvas designer re-discovers the hold perturber ===")
    sites, pairs = [], []
    for k in range(3):
        sites += [S(0, 6 * k), S(0, 6 * k + 2)]
        pairs.append(api.BdlPair(S(0, 6 * k), S(0, 6 * k + 2)))
    problem = api.CanvasSearchProblem(
        fixed_sites=sites,  # note: no hold perturber below the wire
        candidate_sites=[S(c, r) for c in (-2, 0, 2) for r in (16, 18, 20)],
        input_stimuli=[([S(0, -6)], [S(0, -2)])],
        output_pairs=[pairs[-1]],
        outputs=[api.TruthTable(1, 0b10)],
        parameters=PARAMS,
    )
    result = api.search_canvas_design(problem, max_dots=2, iterations=80, seed=2)
    if result is None:
        print("  no design found")
        return
    canvas, correct, total = result
    print(f"  found canvas {sorted(str(s) for s in canvas)} "
          f"scoring {correct}/{total} patterns")


if __name__ == "__main__":
    wire_demo()
    or_gate_demo()
    designer_demo()
