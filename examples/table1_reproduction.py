#!/usr/bin/env python3
"""Reproduce Table 1 of the paper from the command line.

Runs the full design flow over the Trindade'16 / Fontes'18 benchmark
suite and prints our layout dimensions, SiDB counts and areas next to
the published values.

    python examples/table1_reproduction.py [benchmark ...]

Without arguments the small/medium benchmarks run with the exact engine;
pass explicit names (e.g. ``cm82a_5``) to include the large instances
(bounded SAT budget with heuristic fallback).
"""

import sys

from repro import api

DEFAULT_NAMES = [
    "xor2", "xnor2", "par_gen", "mux21", "par_check",
    "xor5_r1", "xor5_majority", "t", "c17", "majority",
]


def main() -> None:
    names = sys.argv[1:] or DEFAULT_NAMES
    database = api.NpnDatabase()
    config = api.FlowConfiguration(
        engine="auto", exact_conflict_limit=150_000, database=database
    )
    print("Table 1 reproduction (ours vs. paper)\n")
    for name in names:
        result = api.design(name, configuration=config)
        row = api.format_table1_row(
            name, result.width, result.height,
            result.num_sidbs, result.area_nm2,
        )
        verified = "ok" if result.equivalence.equivalent else "FAILED"
        print(f"{row}  [{result.engine_used}, verify {verified}, "
              f"{result.runtime_seconds:.1f}s]")


if __name__ == "__main__":
    main()
