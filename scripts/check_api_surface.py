#!/usr/bin/env python3
"""Guard the stable ``repro.api`` surface against accidental breakage.

Snapshots every name exported by :mod:`repro.api` together with its
callable signature (functions, class constructors) or value kind
(constants, enums with their members) into ``scripts/api_surface.json``.
CI compares the live surface against the snapshot and fails on any
removal or signature change.  By default additions are reported but
tolerated; ``--strict`` (the CI gate) fails on them too, so every new
export is a deliberate, snapshotted decision.

    python scripts/check_api_surface.py            # compare, lenient
    python scripts/check_api_surface.py --strict   # compare (CI mode)
    python scripts/check_api_surface.py --update   # regenerate snapshot
"""

from __future__ import annotations

import argparse
import enum
import inspect
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

SNAPSHOT = os.path.join(os.path.dirname(__file__), "api_surface.json")


def describe(obj) -> dict:
    """A JSON-comparable description of one exported name."""
    if isinstance(obj, type) and issubclass(obj, enum.Enum):
        return {
            "kind": "enum",
            "members": {m.name: m.value for m in obj},
        }
    if isinstance(obj, type):
        try:
            signature = str(inspect.signature(obj))
        except (ValueError, TypeError):
            signature = "(...)"
        return {"kind": "class", "signature": signature}
    if callable(obj):
        return {"kind": "function", "signature": str(inspect.signature(obj))}
    return {"kind": type(obj).__name__, "value": repr(obj)}


def current_surface() -> dict:
    from repro import api

    return {name: describe(getattr(api, name)) for name in sorted(api.__all__)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="regenerate the snapshot from the live API")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on exports missing from the "
                             "snapshot (CI mode)")
    args = parser.parse_args()

    surface = current_surface()
    if args.update:
        with open(SNAPSHOT, "w", encoding="utf-8") as handle:
            json.dump(surface, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {SNAPSHOT} ({len(surface)} exports)")
        return 0

    if not os.path.exists(SNAPSHOT):
        print(f"missing snapshot {SNAPSHOT}; run with --update", file=sys.stderr)
        return 1
    with open(SNAPSHOT, encoding="utf-8") as handle:
        expected = json.load(handle)

    problems = []
    for name, description in expected.items():
        if name not in surface:
            problems.append(f"removed export: {name}")
        elif surface[name] != description:
            problems.append(
                f"changed export: {name}\n"
                f"  snapshot: {json.dumps(description, sort_keys=True)}\n"
                f"  current:  {json.dumps(surface[name], sort_keys=True)}"
            )
    added = sorted(set(surface) - set(expected))
    if added:
        message = f"new exports (run --update to snapshot): {', '.join(added)}"
        if args.strict:
            problems.append(message)
        else:
            print(message)

    if problems:
        print("repro.api surface breakage:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print("If intentional, regenerate with: "
              "python scripts/check_api_surface.py --update", file=sys.stderr)
        return 1
    print(f"repro.api surface OK ({len(surface)} exports)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
