#!/usr/bin/env python
"""Benchmark trend tracking: history log + regression gate.

Every ``scripts/bench_perf.py`` run appends one timestamped record to
``benchmarks/artifacts/BENCH_history.jsonl`` with the tracked metrics
of that run (all lower-is-better seconds).  ``--check`` re-reads the
log and fails (exit 1) when a metric regresses more than
:data:`REGRESSION_THRESHOLD` (20%) against the rolling best of the
preceding :data:`ROLLING_WINDOW` records in **each of the latest
:data:`CONFIRM_RECORDS` records** -- the cross-PR complement to the
in-run gates of ``bench_perf.py``.  A regression seen in the latest
record only is printed as a warning, not a failure: even
calibration-normalized values of the multi-process benchmarks swing
50%+ between runs on a noisy shared box (the single-threaded
calibration workload under-corrects for co-tenancy), so a one-record
spike is overwhelmingly noise, while a real regression -- introduced
by a PR and therefore present in every subsequent run -- confirms on
the next ``bench_perf`` run and fails then.

Raw wall-clock seconds are not comparable across runs on shared
hardware: the same code measures 1.5x slower when a noisy neighbour
owns the other half of the core.  Each appended record therefore also
carries ``calibration_seconds`` -- the min-of-repeats time of a fixed
reference workload (:func:`measure_calibration`) run back-to-back with
the benchmarks -- and ``--check`` compares metrics *normalized by the
machine speed of their own run* (``seconds / calibration_seconds``).
A genuinely slower kernel still fails (its time grows while the
calibration does not); a slower machine no longer false-alarms (both
grow together).  Records from before the calibration field exist are
only compared against each other, never across the boundary.

Usage::

    PYTHONPATH=src python scripts/bench_trend.py           # append
    PYTHONPATH=src python scripts/bench_trend.py --check   # gate only

``--check`` is file-based (no benchmarks run), so ``scripts/ci.sh``
can afford it on every invocation; with fewer than two records it
passes trivially.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARTIFACTS = REPO / "benchmarks" / "artifacts"
HISTORY = ARTIFACTS / "BENCH_history.jsonl"

#: Relative slowdown vs. the rolling best that fails ``--check``.
REGRESSION_THRESHOLD = 0.20

#: How many preceding records the rolling best is taken over.
ROLLING_WINDOW = 10

#: A regression only fails when it exceeds the threshold in each of
#: this many trailing records (vs. each record's own rolling best).
#: One-record spikes are warnings: shared-box co-tenancy moves even
#: normalized multi-process timings far past the threshold in a single
#: run, while a genuine code regression persists into every later run.
CONFIRM_RECORDS = 2

#: Annealer gate size whose batch time is tracked (matches
#: ``repro.sidb.perfbench.GATE_SIZE``).
GATE_SIZE = 24

#: Exact-engine gate size whose QuickExact time is tracked (matches
#: ``repro.sidb.perfbench.QUICKEXACT_GATE_SIZE``).
QUICKEXACT_GATE_SIZE = 20

#: Min-of-N repeats for the calibration reference workload.
CALIBRATION_REPEATS = 5


def measure_calibration(repeats: int = CALIBRATION_REPEATS) -> float:
    """Seconds for a fixed reference workload on *this* machine, now.

    The workload blends a pure-Python loop with a seeded numpy kernel
    so it scales with machine load the same way the tracked benchmarks
    do (they are a mix of interpreter-bound obs bookkeeping and
    numpy-bound annealing).  It is fully deterministic; the only
    variable is the machine, which is exactly what it measures.
    """
    import numpy as np

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        accumulator = 0
        for index in range(150_000):
            accumulator = (accumulator + index * index) & 0xFFFFFF
        matrix = np.random.default_rng(0).standard_normal((96, 96))
        for _ in range(24):
            matrix = np.tanh(matrix @ matrix.T / 96.0)
        best = min(best, time.perf_counter() - start)
    return best


def collect_metrics() -> dict[str, float]:
    """Tracked lower-is-better metrics from the benchmark artifacts.

    Missing artifacts (or artifact fields) are simply skipped, so a
    partial ``bench_perf`` run still appends what it measured.
    """
    metrics: dict[str, float] = {}
    simanneal = ARTIFACTS / "BENCH_simanneal.json"
    if simanneal.exists():
        record = json.loads(simanneal.read_text())
        for point in record.get("points", []):
            if point.get("num_sites") == GATE_SIZE:
                metrics["simanneal_batch_seconds"] = point["batch_seconds"]
    quickexact = ARTIFACTS / "BENCH_quickexact.json"
    if quickexact.exists():
        record = json.loads(quickexact.read_text())
        for point in record.get("points", []):
            if point.get("num_sites") == QUICKEXACT_GATE_SIZE:
                metrics["quickexact_20_seconds"] = point[
                    "quickexact_seconds"
                ]
    obs = ARTIFACTS / "BENCH_obs.json"
    if obs.exists():
        record = json.loads(obs.read_text())
        if "disabled_seconds" in record:
            metrics["obs_disabled_seconds"] = record["disabled_seconds"]
        workers2 = record.get("workers2", {})
        if "disabled_seconds" in workers2:
            metrics["obs_workers2_disabled_seconds"] = workers2[
                "disabled_seconds"
            ]
    timing = ARTIFACTS / "BENCH_timing.json"
    if timing.exists():
        record = json.loads(timing.read_text())
        # Sum over the Trindade subset only: present in both the quick
        # and the --full budget, so the metric is comparable across
        # modes.
        trindade = {"xor2", "xnor2", "par_gen", "mux21", "par_check"}
        seconds = 0.0
        found = False
        for row in record.get("rows", []):
            if row.get("name") in trindade and "schemes" in row:
                for cell in row["schemes"].values():
                    seconds += cell.get("sta_seconds", 0.0)
                    found = True
        if found:
            metrics["timing_sta_trindade_seconds"] = seconds
    learn = ARTIFACTS / "BENCH_learn.json"
    if learn.exists():
        record = json.loads(learn.read_text())
        if "guided_seconds" in record:
            metrics["learn_guided_design_seconds"] = record[
                "guided_seconds"
            ]
    service = ARTIFACTS / "BENCH_service.json"
    if service.exists():
        record = json.loads(service.read_text())
        if "warm_disk_seconds" in record:
            metrics["service_warm_disk_seconds"] = record[
                "warm_disk_seconds"
            ]
        load = record.get("load", {})
        if "warm_wall_seconds" in load:
            metrics["service_warm_pool_wall_seconds"] = load[
                "warm_wall_seconds"
            ]
    return metrics


def load_history(path: Path = HISTORY) -> list[dict]:
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def append_history(path: Path = HISTORY) -> dict:
    """Append the current artifacts' metrics as one history record."""
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "metrics": collect_metrics(),
        "calibration_seconds": measure_calibration(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def _slowdown_at(
    records: list[dict],
    index: int,
    name: str,
    threshold: float,
    window: int,
) -> tuple[float, str] | None:
    """Slowdown of metric *name* at record *index* vs. its rolling best.

    Returns ``(slowdown, message)``, or ``None`` when no verdict is
    possible: the metric is absent from the record, no comparable
    baseline exists in the *window* records preceding it, or the
    record's calibration is unusable.  Calibrated records (those
    carrying ``calibration_seconds``) are compared on
    machine-speed-normalized values; records without the field are
    only comparable to each other, so the two populations never gate
    across the calibration boundary.
    """
    record = records[index]
    if name not in record.get("metrics", {}):
        return None
    calibration = record.get("calibration_seconds")
    comparable = []
    for prior in records[max(0, index - window) : index]:
        if name not in prior.get("metrics", {}):
            continue
        prior_calibration = prior.get("calibration_seconds")
        if (prior_calibration is None) != (calibration is None):
            continue
        if prior_calibration is None:
            comparable.append(prior["metrics"][name])
        elif prior_calibration > 0:
            comparable.append(
                prior["metrics"][name] / prior_calibration
            )
    baseline = min(comparable, default=None)
    if baseline is None or baseline <= 0:
        return None
    if calibration is None:
        current, unit = record["metrics"][name], "s"
    elif calibration > 0:
        current = record["metrics"][name] / calibration
        unit = "x calibration"
    else:
        return None
    slowdown = current / baseline - 1.0
    message = (
        f"{name}: {current:.4f}{unit} is {slowdown * 100:.1f}% "
        f"over the rolling best {baseline:.4f}{unit} "
        f"(limit +{threshold * 100:.0f}%)"
    )
    return slowdown, message


def check_history(
    path: Path = HISTORY,
    threshold: float = REGRESSION_THRESHOLD,
    window: int = ROLLING_WINDOW,
    warnings: list[str] | None = None,
) -> list[str]:
    """Confirmed regressions of the latest record; [] is OK.

    A metric fails only when it exceeds *threshold* over its rolling
    best in each of the latest :data:`CONFIRM_RECORDS` records (each
    judged against the window preceding *it*).  A regression seen in
    the latest record alone is appended to *warnings* (when given)
    instead -- a single spike on a shared box is noise, and a real
    regression confirms on the next appended record.
    """
    records = load_history(path)
    if len(records) < 2:
        return []
    failures = []
    latest_index = len(records) - 1
    for name in sorted(records[-1].get("metrics", {})):
        verdict = _slowdown_at(
            records, latest_index, name, threshold, window
        )
        if verdict is None or verdict[0] <= threshold:
            continue
        confirmed = True
        for back in range(1, CONFIRM_RECORDS):
            prior = (
                _slowdown_at(
                    records, latest_index - back, name, threshold, window
                )
                if latest_index - back > 0
                else None
            )
            if prior is None or prior[0] <= threshold:
                confirmed = False
                break
        if confirmed:
            failures.append(verdict[1])
        elif warnings is not None:
            warnings.append(verdict[1])
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="gate the recorded history instead of appending to it",
    )
    arguments = parser.parse_args()

    if arguments.check:
        warnings: list[str] = []
        failures = check_history(warnings=warnings)
        for warning in warnings:
            print(f"WARN (unconfirmed, not gating): {warning}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        records = load_history()
        print(
            f"bench trend OK ({len(records)} record(s) in "
            f"{HISTORY.relative_to(REPO)})"
        )
        return 0

    record = append_history()
    print(f"appended to {HISTORY.relative_to(REPO)}:")
    for name, value in sorted(record["metrics"].items()):
        print(f"  {name}: {value:.4f}s")
    print(
        f"  calibration: {record['calibration_seconds']:.4f}s"
    )
    warnings = []
    failures = check_history(warnings=warnings)
    for warning in warnings:
        print(f"WARN (unconfirmed, not gating): {warning}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
