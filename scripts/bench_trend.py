#!/usr/bin/env python
"""Benchmark trend tracking: history log + regression gate.

Every ``scripts/bench_perf.py`` run appends one timestamped record to
``benchmarks/artifacts/BENCH_history.jsonl`` with the tracked metrics
of that run (all lower-is-better seconds).  ``--check`` re-reads the
log and fails (exit 1) when the most recent record regresses more than
:data:`REGRESSION_THRESHOLD` (20%) against the rolling best of the
preceding :data:`ROLLING_WINDOW` records -- the cross-PR complement to
the in-run gates of ``bench_perf.py``.

Usage::

    PYTHONPATH=src python scripts/bench_trend.py           # append
    PYTHONPATH=src python scripts/bench_trend.py --check   # gate only

``--check`` is file-based (no benchmarks run), so ``scripts/ci.sh``
can afford it on every invocation; with fewer than two records it
passes trivially.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARTIFACTS = REPO / "benchmarks" / "artifacts"
HISTORY = ARTIFACTS / "BENCH_history.jsonl"

#: Relative slowdown vs. the rolling best that fails ``--check``.
REGRESSION_THRESHOLD = 0.20

#: How many preceding records the rolling best is taken over.
ROLLING_WINDOW = 10

#: Annealer gate size whose batch time is tracked (matches
#: ``repro.sidb.perfbench.GATE_SIZE``).
GATE_SIZE = 24


def collect_metrics() -> dict[str, float]:
    """Tracked lower-is-better metrics from the benchmark artifacts.

    Missing artifacts (or artifact fields) are simply skipped, so a
    partial ``bench_perf`` run still appends what it measured.
    """
    metrics: dict[str, float] = {}
    simanneal = ARTIFACTS / "BENCH_simanneal.json"
    if simanneal.exists():
        record = json.loads(simanneal.read_text())
        for point in record.get("points", []):
            if point.get("num_sites") == GATE_SIZE:
                metrics["simanneal_batch_seconds"] = point["batch_seconds"]
    obs = ARTIFACTS / "BENCH_obs.json"
    if obs.exists():
        record = json.loads(obs.read_text())
        if "disabled_seconds" in record:
            metrics["obs_disabled_seconds"] = record["disabled_seconds"]
        workers2 = record.get("workers2", {})
        if "disabled_seconds" in workers2:
            metrics["obs_workers2_disabled_seconds"] = workers2[
                "disabled_seconds"
            ]
    return metrics


def load_history(path: Path = HISTORY) -> list[dict]:
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def append_history(path: Path = HISTORY) -> dict:
    """Append the current artifacts' metrics as one history record."""
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "metrics": collect_metrics(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def check_history(
    path: Path = HISTORY,
    threshold: float = REGRESSION_THRESHOLD,
    window: int = ROLLING_WINDOW,
) -> list[str]:
    """Regressions of the latest record vs. the rolling best; [] is OK."""
    records = load_history(path)
    if len(records) < 2:
        return []
    latest = records[-1].get("metrics", {})
    previous = records[-1 - window : -1]
    failures = []
    for name, value in sorted(latest.items()):
        baseline = min(
            (
                record["metrics"][name]
                for record in previous
                if name in record.get("metrics", {})
            ),
            default=None,
        )
        if baseline is None or baseline <= 0:
            continue
        slowdown = value / baseline - 1.0
        if slowdown > threshold:
            failures.append(
                f"{name}: {value:.4f}s is {slowdown * 100:.1f}% over the "
                f"rolling best {baseline:.4f}s "
                f"(limit +{threshold * 100:.0f}%)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="gate the recorded history instead of appending to it",
    )
    arguments = parser.parse_args()

    if arguments.check:
        failures = check_history()
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        records = load_history()
        print(
            f"bench trend OK ({len(records)} record(s) in "
            f"{HISTORY.relative_to(REPO)})"
        )
        return 0

    record = append_history()
    print(f"appended to {HISTORY.relative_to(REPO)}:")
    for name, value in sorted(record["metrics"].items()):
        print(f"  {name}: {value:.4f}s")
    failures = check_history()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
