"""CI smoke test of the design service.

Spins up a :class:`repro.api.DesignService` on an ephemeral port with a
throwaway artifact store, then exercises the whole client surface over
real HTTP against the ``/v1`` API: health check, job submission, status
polling, artifact fetch, cache-hit resubmission (asserting
byte-identical ``.sqd``), metrics scrape, the deprecated unversioned
aliases (must still work and carry a ``Deprecation`` header), and
shutdown.  The observability surface is exercised along the way:
``/v1/readyz``, W3C ``traceparent`` continuation into the job document
and the ``/v1/jobs/<id>/trace`` worker span tree, and a concurrent
``/v1/events`` server-sent-events subscriber that must see the job's
lifecycle events live.  A second phase runs a 2-worker pool
with ``max_queued=2`` to exercise admission control (submit until 429
with a ``Retry-After`` header) and graceful drain (admitted jobs
finalize as done/cancelled, never as a crash).  Exits non-zero on the
first failed expectation.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

from repro import api


def _request(url, payload=None, extra_headers=None):
    data = None
    headers = dict(extra_headers or {})
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    try:
        with urllib.request.urlopen(
            urllib.request.Request(url, data=data, headers=headers),
            timeout=30,
        ) as response:
            body = response.read()
            status = response.status
            content_type = response.headers.get_content_type()
            response_headers = dict(response.headers)
    except urllib.error.HTTPError as error:
        body = error.read()
        status = error.code
        content_type = error.headers.get_content_type()
        response_headers = dict(error.headers)
    if content_type == "application/json":
        return status, json.loads(body), response_headers
    return status, body, response_headers


class _EventTail(threading.Thread):
    """Background ``/v1/events`` subscriber collecting event names.

    Reads the SSE stream live, stops once ``stop_on`` arrives (or the
    server closes the stream), and surfaces any reader error to the
    main thread via :attr:`error`.
    """

    def __init__(self, base_url, stop_on="job.finished"):
        super().__init__(name="smoke-sse", daemon=True)
        # A small replay window bridges the instant between the HTTP
        # connect and the server arming its ring cursor, so an event
        # recorded in that gap is still delivered.
        self.url = base_url + "/v1/events?replay=4&timeout_seconds=60"
        self.stop_on = stop_on
        self.names = []
        self.error = None
        self.ready = threading.Event()

    def run(self):
        try:
            with urllib.request.urlopen(self.url, timeout=90) as response:
                assert (
                    response.headers.get_content_type() == "text/event-stream"
                ), response.headers.get_content_type()
                self.ready.set()
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\n")
                    if line.startswith("event: "):
                        name = line[len("event: "):]
                        self.names.append(name)
                        if name == self.stop_on:
                            return
        except Exception as error:  # noqa: BLE001 -- reported by main()
            self.error = error
        finally:
            self.ready.set()


def _smoke_backpressure_and_drain() -> None:
    """429 on a full admission queue, then a clean graceful drain."""
    store_root = tempfile.mkdtemp(prefix="repro-smoke-pool-")
    service = api.DesignService(
        store=store_root, port=0, workers=2, max_queued=2
    )
    service.start()
    url = service.url
    print(f"pool service on {url} (2 workers, max_queued=2)")

    # Fill both workers and the 2-deep admission queue with slow,
    # distinct designs, then overflow it.
    admitted = []
    rejected = None
    for index in range(8):
        status, doc, headers = _request(
            url + "/v1/jobs",
            payload={"specification": "c17", "name": f"pool-{index}"},
        )
        if status == 202:
            admitted.append(doc["job"])
        elif status == 429:
            rejected = (doc, headers)
            break
        else:
            raise AssertionError(f"unexpected status {status}: {doc}")
    assert rejected is not None, "queue never filled (no 429)"
    doc, headers = rejected
    assert "Retry-After" in headers, headers
    assert int(headers["Retry-After"]) >= 1, headers
    print(
        f"backpressure ok: {len(admitted)} admitted, then 429 with "
        f"Retry-After: {headers['Retry-After']}s"
    )

    service.close(drain=True, drain_timeout=60.0)
    statuses = {}
    for job in admitted:
        record = service.scheduler.job(job["id"])
        assert record is not None, job["id"]
        statuses[record.id] = record.status
        error = record.error or {}
        assert error.get("kind") != "crash", (record.id, record.error)
    assert all(s in ("done", "cancelled") for s in statuses.values()), (
        statuses
    )
    print(f"drain ok: {sorted(statuses.values())}")


def main() -> int:
    store_root = tempfile.mkdtemp(prefix="repro-smoke-")
    with api.DesignService(store=store_root, port=0, workers=1) as service:
        service.start()
        url = service.url
        print(f"service on {url} (store: {store_root})")

        status, health, headers = _request(url + "/v1/healthz")
        assert status == 200 and health["status"] == "ok", health
        assert health["version"] == api.package_version(), health
        assert "Deprecation" not in headers, headers
        assert api.parse_traceparent(headers.get("traceparent", "")), headers
        assert "X-Repro-Trace-Id" in headers, headers
        print(f"healthz ok (version {health['version']}, trace headers on)")

        status, ready, _ = _request(url + "/v1/readyz")
        assert status == 200 and ready["ready"] is True, ready
        assert ready["store_writable"] is True, ready
        print("readyz ok")

        # Subscribe to the live event stream *before* submitting, so
        # the job's lifecycle events must arrive over SSE as they
        # happen.
        tail = _EventTail(url)
        tail.start()
        assert tail.ready.wait(timeout=10), "SSE stream never connected"
        assert tail.error is None, tail.error

        client_trace = api.new_trace_context()
        status, doc, headers = _request(
            url + "/v1/jobs",
            payload={"specification": "xor2"},
            extra_headers={"traceparent": client_trace.to_traceparent()},
        )
        assert status == 202, (status, doc)
        job = doc["job"]
        assert job["schema_version"] == 1, job
        assert job["trace_id"] == client_trace.trace_id, job
        echoed = api.parse_traceparent(headers.get("traceparent", ""))
        assert echoed and echoed.trace_id == client_trace.trace_id, headers
        print(f"submitted {job['id']} (trace {job['trace_id']})")

        deadline = time.time() + 120
        while job["status"] not in ("done", "failed", "cancelled"):
            assert time.time() < deadline, "job did not finish in 120 s"
            time.sleep(0.2)
            _, job, _ = _request(f"{url}/v1/jobs/{job['id']}")
        assert job["status"] == "done", job
        print(f"finished: {job['summary']}")

        tail.join(timeout=30)
        assert tail.error is None, tail.error
        assert "job.submitted" in tail.names, tail.names
        assert "job.finished" in tail.names, tail.names
        print(f"events stream ok ({len(tail.names)} live events)")

        status, trace_doc, _ = _request(f"{url}/v1/jobs/{job['id']}/trace")
        assert status == 200, (status, trace_doc)
        assert trace_doc["trace_id"] == client_trace.trace_id, trace_doc
        span = trace_doc["span"]
        assert span["attributes"]["trace_id"] == client_trace.trace_id, span
        status, chrome, _ = _request(
            f"{url}/v1/jobs/{job['id']}/trace?format=chrome"
        )
        assert status == 200 and "traceEvents" in chrome, chrome
        print(f"job trace ok (root span {span['name']!r}, chrome export)")

        assert job["artifacts"]["sqd"].startswith("/v1/"), job["artifacts"]
        _, sqd_first, _ = _request(url + job["artifacts"]["sqd"])
        assert sqd_first.startswith(b"<?xml"), sqd_first[:40]
        print(f"fetched design.sqd ({len(sqd_first)} bytes)")

        status, doc, _ = _request(
            url + "/v1/jobs", payload={"specification": "xor2"}
        )
        rejob = doc["job"]
        assert rejob["status"] == "done" and rejob["cache_hit"], rejob
        _, sqd_second, _ = _request(url + rejob["artifacts"]["sqd"])
        assert sqd_second == sqd_first, "cache hit returned different bytes"
        status, miss, _ = _request(f"{url}/v1/jobs/{rejob['id']}/trace")
        assert status == 404 and "cache hit" in miss["error"], miss
        print("resubmission served from cache, byte-identical .sqd")

        status, metrics, _ = _request(url + "/v1/metrics")
        assert status == 200
        text = metrics.decode("utf-8")
        assert "repro_service_service_jobs_done_total" in text, text[:400]
        assert "# HELP repro_service_http_requests_total" in text, text[:400]
        assert "repro_service_queue_depth" in text, text[:400]
        print("metrics scrape ok (spans + http + gauges)")

        # The historical unversioned paths must keep working as
        # deprecated aliases: same payloads, plus a Deprecation header
        # pointing at the /v1 successor.
        status, alias_health, headers = _request(url + "/healthz")
        assert status == 200 and alias_health["status"] == "ok", alias_health
        assert headers.get("Deprecation") == "true", headers
        assert "/v1/healthz" in headers.get("Link", ""), headers
        status, alias_doc, headers = _request(f"{url}/jobs/{job['id']}")
        assert status == 200 and alias_doc["status"] == "done", alias_doc
        assert headers.get("Deprecation") == "true", headers
        assert alias_doc["artifacts"]["sqd"].startswith("/artifacts/"), (
            alias_doc["artifacts"]
        )
        _, alias_sqd, headers = _request(url + alias_doc["artifacts"]["sqd"])
        assert alias_sqd == sqd_first, "alias served different bytes"
        assert headers.get("Deprecation") == "true", headers
        print("unversioned aliases ok (Deprecation headers present)")

    _smoke_backpressure_and_drain()
    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
