"""CI smoke test of the design service.

Spins up a :class:`repro.api.DesignService` on an ephemeral port with a
throwaway artifact store, then exercises the whole client surface over
real HTTP: health check, job submission, status polling, artifact
fetch, cache-hit resubmission (asserting byte-identical ``.sqd``),
metrics scrape, and shutdown.  Exits non-zero on the first failed
expectation.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import sys
import tempfile
import time
import urllib.request

from repro import api


def _request(url, payload=None):
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    with urllib.request.urlopen(
        urllib.request.Request(url, data=data, headers=headers), timeout=30
    ) as response:
        body = response.read()
    if response.headers.get_content_type() == "application/json":
        return response.status, json.loads(body)
    return response.status, body


def main() -> int:
    store_root = tempfile.mkdtemp(prefix="repro-smoke-")
    with api.DesignService(store=store_root, port=0, workers=1) as service:
        service.start()
        url = service.url
        print(f"service on {url} (store: {store_root})")

        status, health = _request(url + "/healthz")
        assert status == 200 and health["status"] == "ok", health
        assert health["version"] == api.package_version(), health
        print(f"healthz ok (version {health['version']})")

        status, doc = _request(
            url + "/jobs", payload={"specification": "xor2"}
        )
        assert status == 202, (status, doc)
        job = doc["job"]
        print(f"submitted {job['id']} ({job['status']})")

        deadline = time.time() + 120
        while job["status"] not in ("done", "failed", "cancelled"):
            assert time.time() < deadline, "job did not finish in 120 s"
            time.sleep(0.2)
            _, job = _request(f"{url}/jobs/{job['id']}")
        assert job["status"] == "done", job
        print(f"finished: {job['summary']}")

        _, sqd_first = _request(url + job["artifacts"]["sqd"])
        assert sqd_first.startswith(b"<?xml"), sqd_first[:40]
        print(f"fetched design.sqd ({len(sqd_first)} bytes)")

        _, doc = _request(url + "/jobs", payload={"specification": "xor2"})
        rejob = doc["job"]
        assert rejob["status"] == "done" and rejob["cache_hit"], rejob
        _, sqd_second = _request(url + rejob["artifacts"]["sqd"])
        assert sqd_second == sqd_first, "cache hit returned different bytes"
        print("resubmission served from cache, byte-identical .sqd")

        status, metrics = _request(url + "/metrics")
        assert status == 200
        text = metrics.decode("utf-8")
        assert "repro_service_service_jobs_done_total" in text, text[:400]
        print("metrics scrape ok")
    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
