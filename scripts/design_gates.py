#!/usr/bin/env python3
"""Offline design-space exploration for the Bestagon library.

Scans geometric parameter spaces (and runs the canvas designer) with the
exhaustive ground-state oracle at the Bestagon parameter set
(mu = -0.32 eV), writing every validated motif to
``src/repro/gatelib/found_designs.json``.  The library builders in
``repro.gatelib.designs`` read that file.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.coords.lattice import LatticeSite
from repro.networks.truth_table import TruthTable
from repro.sidb.bdl import BdlPair, read_bdl_pair
from repro.sidb.charge import SidbLayout
from repro.sidb.exhaustive import exhaustive_ground_state
from repro.sidb.parallel import run_tasks, workers_from_env
from repro.tech.parameters import SiDBSimulationParameters

S = LatticeSite.from_row
P32 = SiDBSimulationParameters(mu_minus=-0.32)
# Candidate classification fans out over this many worker processes
# (the scan order and results are identical to the serial default).
WORKERS = workers_from_env()
OUT = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "gatelib",
    "found_designs.json",
)

RESULTS: dict = {}
if os.path.exists(OUT):
    with open(OUT, encoding="utf-8") as _handle:
        RESULTS.update(json.load(_handle))


def save() -> None:
    with open(OUT, "w", encoding="utf-8") as handle:
        json.dump(RESULTS, handle, indent=1, sort_keys=True)
    print("saved", flush=True)


def ground_reads(body, perturbers, pairs):
    try:
        layout = SidbLayout(body + perturbers)
    except ValueError:
        return None  # colliding candidate geometry
    result = exhaustive_ground_state(layout, P32)
    if not result.ground_states:
        return None
    reads = [
        tuple(read_bdl_pair(layout, gs, p) for p in pairs)
        for gs in result.ground_states
    ]
    if any(r != reads[0] for r in reads):
        return None
    return reads[0]


def chain(col0, row0, dxs, intra=2, pitch=6):
    sites, pairs, col, row = [], [], col0, row0
    positions = [(col0, row0)]
    for dx in dxs:
        col += dx
        row += pitch
        positions.append((col, row))
    sites, pairs = [], []
    for c, r in positions:
        sites += [S(c, r), S(c, r + intra)]
        pairs.append(BdlPair(S(c, r), S(c, r + intra)))
    return sites, pairs, positions


def wire_ok(dxs, pitch, g1=2, g0=6, gout=4, intra=2):
    sites, pairs, positions = chain(0, 0, dxs, intra, pitch)
    first_c, first_r = positions[0]
    last_c, last_r = positions[-1]
    dx0 = dxs[0] if dxs else 0
    dxn = dxs[-1] if dxs else 0
    for bit, g in ((0, g0), (1, g1)):
        reads = ground_reads(
            sites,
            [S(first_c - dx0, first_r - g), S(last_c + dxn, last_r + intra + gout)],
            pairs,
        )
        if reads is None or any(v != bool(bit) for v in reads):
            return False
    return True


def stage_steep_wires():
    """Which per-step lateral displacements does a pitch-6 chain tolerate?"""
    found = []
    for dx in range(0, 9):
        for pitch in (5, 6, 7):
            if wire_ok([dx] * 4, pitch):
                found.append({"dx": dx, "pitch": pitch})
                print("wire ok:", dx, pitch, flush=True)
    RESULTS["wires"] = found
    save()


def stage_inverter():
    """1-in-1-out inverting doglegs: input chain, offset pair, output."""
    found = []
    spec1 = TruthTable(1, 0b01)  # NOT
    for bx in range(2, 8):
        for brow in range(8, 18, 2):
            for orow_off in range(4, 10, 2):
                for gout in (3, 4, 5):
                    body = [S(0, 0), S(0, 2), S(0, 6), S(0, 8)]
                    in_pairs = [
                        BdlPair(S(0, 0), S(0, 2)),
                        BdlPair(S(0, 6), S(0, 8)),
                    ]
                    body += [S(bx, brow), S(bx, brow + 2)]
                    orow = brow + orow_off
                    body += [S(bx, orow), S(bx, orow + 2)]
                    out_pair = BdlPair(S(bx, orow), S(bx, orow + 2))
                    ok = True
                    for bit, g in ((0, 6), (1, 2)):
                        reads = ground_reads(
                            body,
                            [S(0, -g), S(bx, orow + 2 + gout)],
                            in_pairs + [out_pair],
                        )
                        if reads is None:
                            ok = False
                            break
                        if reads[0] != bool(bit) or reads[1] != bool(bit):
                            ok = False
                            break
                        if reads[2] != (not bool(bit)):
                            ok = False
                            break
                    if ok:
                        entry = {
                            "bx": bx, "brow": brow,
                            "orow_off": orow_off, "gout": gout,
                        }
                        found.append(entry)
                        print("inv ok:", entry, flush=True)
            if len(found) >= 6:
                break
    RESULTS["inverter"] = found
    save()


def stage_fanout():
    """1-in-2-out: input chain into a junction, two diverging chains."""
    found = []
    for dxo in (3, 4, 5):
        for og in (4, 5, 6):
            for gout in (3, 4, 5):
                body = [S(0, 0), S(0, 2), S(0, 6), S(0, 8)]
                in_pairs = [
                    BdlPair(S(0, 0), S(0, 2)),
                    BdlPair(S(0, 6), S(0, 8)),
                ]
                lrow = 8 + og
                body += [S(-dxo, lrow), S(-dxo, lrow + 2)]
                body += [S(+dxo, lrow), S(+dxo, lrow + 2)]
                left = BdlPair(S(-dxo, lrow), S(-dxo, lrow + 2))
                right = BdlPair(S(dxo, lrow), S(dxo, lrow + 2))
                ok = True
                for bit, g in ((0, 6), (1, 2)):
                    reads = ground_reads(
                        body,
                        [
                            S(0, -g),
                            S(-2 * dxo, lrow + 2 + gout),
                            S(2 * dxo, lrow + 2 + gout),
                        ],
                        in_pairs + [left, right],
                    )
                    if reads is None or any(v != bool(bit) for v in reads):
                        ok = False
                        break
                if ok:
                    entry = {"dxo": dxo, "og": og, "gout": gout}
                    found.append(entry)
                    print("fanout ok:", entry, flush=True)
    RESULTS["fanout"] = found
    save()


def two_input_core(dx1, dx2, og, extra=()):
    sites, a_pairs, b_pairs = [], [], []
    for sign, target in ((-1, a_pairs), (1, b_pairs)):
        c0, c1 = sign * (dx2 + dx1), sign * dx2
        sites += [S(c0, 0), S(c0, 2), S(c1, 6), S(c1, 8)]
        target.extend(
            [BdlPair(S(c0, 0), S(c0, 2)), BdlPair(S(c1, 6), S(c1, 8))]
        )
    orow = 8 + og
    out_pair = BdlPair(S(0, orow), S(0, orow + 2))
    sites += [S(0, orow), S(0, orow + 2)]
    existing = set(sites)
    for c, r in extra:
        site = S(c, r)
        if site in existing:
            return None
        sites.append(site)
        existing.add(site)
    return sites, a_pairs, b_pairs, out_pair, orow


def classify_core(dx1, dx2, og, gout, extra=()):
    core = two_input_core(dx1, dx2, og, extra)
    if core is None:
        return None
    sites, ap, bp, op, orow = core
    outs = []
    for pattern in range(4):
        perturbers = [
            S(-(dx2 + 2 * dx1), -2 if pattern & 1 else -6),
            S(+(dx2 + 2 * dx1), -2 if (pattern >> 1) & 1 else -6),
            S(0, orow + 2 + gout),
        ]
        reads = ground_reads(sites, perturbers, ap + bp + [op])
        if reads is None:
            return None
        if any(v != bool(pattern & 1) for v in reads[0:2]):
            return None
        if any(v != bool((pattern >> 1) & 1) for v in reads[2:4]):
            return None
        outs.append(reads[4])
    return tuple(outs)


def classify_candidate(candidate):
    """Worker entry: unpack one two-input-core candidate tuple."""
    dx1, dx2, og, gout, extra = candidate
    return classify_core(dx1, dx2, og, gout, extra)


TT_NAMES = {
    (False, True, True, True): "or",
    (False, False, False, True): "and",
    (True, False, False, False): "nor",
    (True, True, True, False): "nand",
    (False, True, True, False): "xor",
    (True, False, False, True): "xnor",
}


def stage_two_input_gates():
    found: dict[str, list] = {}
    extras = [()]
    # Canvas decorations: symmetric dot pairs around/below the output pair.
    for h in (2, 3, 4, 5, 6):
        for hr in (10, 12, 14, 16, 18, 20):
            extras.append(((-h, hr), (h, hr)))
    for c in (0,):
        for cr in (16, 18, 20, 22):
            extras.append(((c, cr),))
    candidates = [
        (dx1, dx2, og, gout, tuple(tuple(e) for e in extra))
        for dx1 in (3, 4, 5)
        for dx2 in (2, 3, 4, 5)
        for og in (3, 4, 5, 6, 8)
        for gout in (2, 3, 4, 5)
        for extra in extras
    ]
    # Chunked fan-out: each chunk maps over the worker pool (ordered,
    # so the selection below matches a serial scan), then the running
    # results are checkpointed.
    chunk = 240
    for start in range(0, len(candidates), chunk):
        batch = candidates[start:start + chunk]
        for candidate, tt in zip(
            batch, run_tasks(
                classify_candidate,
                batch,
                workers=WORKERS,
                label="design_gates.candidates",
            )
        ):
            if tt is None:
                continue
            name = TT_NAMES.get(tt)
            if name and len(found.get(name, [])) < 8:
                dx1, dx2, og, gout, extra = candidate
                entry = {
                    "dx1": dx1, "dx2": dx2, "og": og,
                    "gout": gout, "extra": [list(e) for e in extra],
                }
                found.setdefault(name, []).append(entry)
                print(name, "ok:", entry, flush=True)
        RESULTS["two_input"] = found
        save()
    print("two-input scan done over", len(candidates), "candidates", flush=True)


def stage_crossing():
    """Two diagonal chains crossing near the tile center.

    Chain L runs NW->SE (left to right), chain R runs NE->SW; they pass
    each other at a lateral clearance ``sep`` at the crossing row.
    """
    found = []
    for dx in (3, 4):
        for sep in (4, 6, 8):
            for g1, g0 in ((2, 6),):
                # L: columns -2dx-sep/2 .. ; R mirrored; crossing at row 12.
                l_cols = [-(sep // 2) - 2 * dx, -(sep // 2) - dx, -(sep // 2)]
                r_cols = [(sep // 2) + 2 * dx, (sep // 2) + dx, (sep // 2)]
                rows = [0, 6, 12]
                # After the crossing row they continue to the opposite side.
                l_cols += [(sep // 2) + dx, (sep // 2) + 2 * dx]
                r_cols += [-(sep // 2) - dx, -(sep // 2) - 2 * dx]
                rows += [18, 24]
                body, lp, rp = [], [], []
                for c, r in zip(l_cols, rows):
                    body += [S(c, r), S(c, r + 2)]
                    lp.append(BdlPair(S(c, r), S(c, r + 2)))
                for c, r in zip(r_cols, rows):
                    body += [S(c, r), S(c, r + 2)]
                    rp.append(BdlPair(S(c, r), S(c, r + 2)))
                ok = True
                for pattern in range(4):
                    la = bool(pattern & 1)
                    rb = bool((pattern >> 1) & 1)
                    perturbers = [
                        S(l_cols[0] - dx, -2 if la else -6),
                        S(r_cols[0] + dx, -2 if rb else -6),
                        S(l_cols[-1] + dx, 24 + 2 + 4),
                        S(r_cols[-1] - dx, 24 + 2 + 4),
                    ]
                    reads = ground_reads(body, perturbers, lp + rp)
                    if reads is None:
                        ok = False
                        break
                    if any(v != la for v in reads[: len(lp)]):
                        ok = False
                        break
                    if any(v != rb for v in reads[len(lp):]):
                        ok = False
                        break
                if ok:
                    entry = {"dx": dx, "sep": sep}
                    found.append(entry)
                    print("cross ok:", entry, flush=True)
    RESULTS["crossing"] = found
    save()


def stage_xor_canvas():
    """Canvas search for XOR on the two-input template."""
    from repro.gatelib.designer import CanvasSearchProblem, search_canvas_design

    dx1, dx2, og, gout = 4, 4, 8, 4
    sites, ap, bp, op, orow = two_input_core(dx1, dx2, og)
    candidates = [
        S(c, r)
        for c in range(-7, 8)
        for r in range(10, orow - 1)
        if (c, r) not in {(0, orow)}
    ]
    problem = CanvasSearchProblem(
        fixed_sites=sites
        + [S(0, orow + 2 + gout)],
        candidate_sites=candidates,
        input_stimuli=[
            ([S(-(dx2 + 2 * dx1), -6)], [S(-(dx2 + 2 * dx1), -2)]),
            ([S(+(dx2 + 2 * dx1), -6)], [S(+(dx2 + 2 * dx1), -2)]),
        ],
        output_pairs=[op],
        outputs=[TruthTable(2, 0b0110)],
        parameters=P32,
        input_pairs_to_hold=[(p, 0) for p in ap] + [(p, 1) for p in bp],
    )
    best = None
    for seed in range(6):
        result = search_canvas_design(
            problem, max_dots=5, iterations=250, seed=seed
        )
        if result is None:
            continue
        canvas, correct, total = result
        print(f"xor seed {seed}: {correct}/{total}", flush=True)
        if best is None or correct > best[1]:
            best = (canvas, correct, total)
        if correct == total:
            break
    if best is not None:
        canvas, correct, total = best
        RESULTS["xor_canvas"] = {
            "template": {"dx1": dx1, "dx2": dx2, "og": og, "gout": gout},
            "canvas": [[s.n, s.row] for s in sorted(canvas)],
            "correct": correct,
            "total": total,
        }
        save()


if __name__ == "__main__":
    start = time.time()
    arguments = sys.argv[1:]
    collector = None
    if "--collect" in arguments:
        # Buffer every physics-labeled canvas candidate the designer
        # stages evaluate (the score_design hook covers stage_xor_canvas)
        # into a training shard under the given directory.
        from repro.learn import hooks as learn_hooks
        from repro.learn.dataset import ExampleCollector

        where = arguments.index("--collect")
        try:
            collect_dir = arguments[where + 1]
        except IndexError:
            sys.exit("--collect requires a directory argument")
        del arguments[where:where + 2]
        collector = ExampleCollector(collect_dir)
        learn_hooks.set_collector(collector)
    stages = arguments or [
        "wires", "inverter", "fanout", "two_input", "crossing", "xor",
    ]
    dispatch = {
        "wires": stage_steep_wires,
        "inverter": stage_inverter,
        "fanout": stage_fanout,
        "two_input": stage_two_input_gates,
        "crossing": stage_crossing,
        "xor": stage_xor_canvas,
    }
    for stage in stages:
        print(f"=== stage {stage} ({time.time() - start:.0f}s)", flush=True)
        dispatch[stage]()
    if collector is not None:
        shard = collector.flush()
        if shard is None:
            print(
                "collected no examples (only the xor stage evaluates "
                "through the hooked designer)", flush=True,
            )
        else:
            print(f"collected examples -> {shard}", flush=True)
    print(f"ALL DONE in {time.time() - start:.0f}s", flush=True)
