#!/usr/bin/env python3
"""Tile-context re-tuning of the two-input gate cores.

The isolated-core scans of ``design_gates.py`` find junction geometries
that compute AND/OR with bare stimulus perturbers; embedded in a full
tile, the funnel wire charges shift the electrostatic balance.  This
script re-scans the core knobs (junction gap ``og``, convergence ``dx2``,
optional hold dots) *in the assembled-tile context*, using the library's
own operational check (SimAnneal engine) as the oracle, and stores the
winners under ``two_input_tile`` in ``found_designs.json``.

Caveat (documented in EXPERIMENTS.md): full tiles exceed the exhaustive
engine's reach (> 2^27 configurations), and the SimAnneal oracle at
small schedules is noisy enough that its "winners" may regress under
the deterministic default validation -- review scores with
``python -m repro.cli validate`` before trusting an update.  This is the
same difficulty that led the paper to pair its RL agent with manual
review and editing.
"""

from __future__ import annotations

import json
import os
import sys

from repro.gatelib import designs as D
from repro.gatelib.library import BestagonLibrary
from repro.gatelib.tile import Port
from repro.sidb.parallel import run_tasks, workers_from_env
from repro.sidb.simanneal import SimAnnealParameters

OUT = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "gatelib",
    "found_designs.json",
)
SCHEDULE = SimAnnealParameters(instances=10, sweeps=200, seed=5)
# Core candidates are scored over this many worker processes; the scan
# order (and therefore the selected winner) matches the serial default.
WORKERS = workers_from_env()


def evaluate(kind: str, core: dict) -> int:
    """Correct patterns of the SE-variant tile built from ``core``."""
    original = dict(D._TWO_INPUT)
    D._TWO_INPUT[kind] = [core]
    try:
        design = D.gate2_design(kind, Port.SE)
        library = BestagonLibrary({design.name: design})
        report = library.validate(design.name, engine="auto", schedule=SCHEDULE)
        return sum(p.correct for p in report.patterns)
    except Exception:
        return -1
    finally:
        D._TWO_INPUT.clear()
        D._TWO_INPUT.update(original)


def evaluate_candidate(task):
    """Worker entry: score one ``(kind, core)`` candidate."""
    kind, core = task
    return evaluate(kind, core)


def tune(kind: str) -> dict | None:
    best = None
    best_score = 0
    extras = [[]]
    for h in (2, 3, 4):
        for hr in (16, 18, 20):
            extras.append([[-h, hr], [h, hr]])
    cores = [
        {"dx1": dx1, "dx2": dx2, "og": og, "gout": gout, "extra": extra}
        for dx1 in (3, 4)
        for dx2 in (3, 4, 5)
        for og in (3, 4, 5, 6)
        for gout in (4,)
        for extra in extras
    ]
    # Chunked fan-out preserves the serial early exit: chunks are
    # scored in scan order, and the first perfect core wins.
    chunk = max(8, 4 * WORKERS)
    for start in range(0, len(cores), chunk):
        batch = cores[start:start + chunk]
        scores = run_tasks(
            evaluate_candidate,
            [(kind, core) for core in batch],
            workers=WORKERS,
            label="tune_gate_tiles.cores",
        )
        for core, score in zip(batch, scores):
            if score > best_score:
                best_score = score
                best = core
                print(f"{kind}: {score}/4 {core}", flush=True)
            if score == 4:
                return best
    return best


if __name__ == "__main__":
    arguments = sys.argv[1:]
    collector = None
    if "--collect" in arguments:
        # Buffer every tile-context operational check (the library
        # validate path fires the check_operational learn hook) into a
        # training shard.  Collection is in-process, so force a serial
        # scan -- worker processes would evaluate behind the hook's back.
        from repro.learn import hooks as learn_hooks
        from repro.learn.dataset import ExampleCollector

        where = arguments.index("--collect")
        try:
            collect_dir = arguments[where + 1]
        except IndexError:
            sys.exit("--collect requires a directory argument")
        del arguments[where:where + 2]
        collector = ExampleCollector(collect_dir)
        learn_hooks.set_collector(collector)
        if WORKERS > 1:
            print("--collect forces a serial scan (workers=1)", flush=True)
            WORKERS = 1
    kinds = arguments or ["and", "or", "nand", "xor"]
    data = json.load(open(OUT)) if os.path.exists(OUT) else {}
    tile_section = data.setdefault("two_input_tile", {})
    for kind in kinds:
        print(f"=== tuning {kind}", flush=True)
        core = tune(kind)
        if core is not None:
            tile_section[kind] = [core]
            json.dump(data, open(OUT, "w"), indent=1, sort_keys=True)
            print(f"saved {kind}: {core}", flush=True)
    if collector is not None:
        shard = collector.flush()
        if shard is None:
            print("collected no examples", flush=True)
        else:
            print(f"collected examples -> {shard}", flush=True)
