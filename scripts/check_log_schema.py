"""CI gate for the structured-log record schema.

Validates JSON-lines log output against the versioned envelope
contract of :mod:`repro.obs.log` (schema version
:data:`~repro.obs.log.LOG_SCHEMA_VERSION`):

* every line parses as a JSON object;
* the envelope keys ``ts``/``level``/``logger``/``event``/``pid`` are
  all present with the right types (``level`` a registered name);
* keys are serialized in sorted order (stable diffs, greppable lines);
* correlation fields (``trace_id``, ``job_id``), when present, are
  strings.

With no arguments the script *produces* its own corpus by configuring
logging at ``debug`` and running a real flow (``mux21``) plus bound
logger calls, so the check exercises the actual producers -- the flow
steps, ``bind()`` correlation, and every level method.  Passing file
paths instead validates those JSONL files (e.g. captured service
logs)::

    PYTHONPATH=src python scripts/check_log_schema.py
    PYTHONPATH=src python scripts/check_log_schema.py service.log
"""

import io
import json
import math
import sys

from repro import api
from repro.obs import log as obs_log

#: Correlation fields with a pinned type (string) when present.
STRING_FIELDS = ("trace_id", "job_id")


def validate_line(line: str, where: str) -> list[str]:
    """Schema violations in one JSON log line (empty when valid)."""
    problems = []
    try:
        record = json.loads(line)
    except ValueError as error:
        return [f"{where}: not JSON ({error})"]
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    for key in obs_log.ENVELOPE_KEYS:
        if key not in record:
            problems.append(f"{where}: missing envelope key {key!r}")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or (
        isinstance(ts, float) and not math.isfinite(ts)
    ):
        problems.append(f"{where}: ts is not a finite number: {ts!r}")
    if record.get("level") not in obs_log.LEVELS:
        problems.append(f"{where}: unknown level {record.get('level')!r}")
    for key in ("logger", "event"):
        value = record.get(key)
        if not isinstance(value, str) or not value:
            problems.append(f"{where}: {key} is not a non-empty string")
    if not isinstance(record.get("pid"), int):
        problems.append(f"{where}: pid is not an integer")
    for key in STRING_FIELDS:
        if key in record and not isinstance(record[key], str):
            problems.append(f"{where}: {key} is not a string")
    keys = list(record)
    if keys != sorted(keys):
        problems.append(f"{where}: keys not sorted: {keys}")
    return problems


def validate_lines(text: str, source: str) -> tuple[int, list[str]]:
    """Validate every non-empty line; returns (count, problems)."""
    problems = []
    count = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        count += 1
        problems.extend(validate_line(line, f"{source}:{number}"))
    return count, problems


def produce_corpus() -> str:
    """Emit a representative log corpus from the real producers."""
    stream = io.StringIO()
    api.configure_logging(stream=stream, level="debug")
    try:
        logger = api.get_logger("check.schema")
        trace = api.new_trace_context()
        with api.log_bind(trace_id=trace.trace_id, job_id="j-selfcheck"):
            logger.debug("selfcheck.debug", detail="x")
            logger.info("selfcheck.info", attempt=1, ratio=0.5)
            logger.warning("selfcheck.warning", path="/v1/jobs")
            logger.error("selfcheck.error", unserializable=object())
        # The flow steps log at debug; run one real design so the
        # checked corpus includes the production call sites.
        api.design("mux21", verify=False)
    finally:
        api.shutdown_logging()
    return stream.getvalue()


def main(argv: list[str]) -> int:
    if argv:
        total, problems = 0, []
        for path in argv:
            with open(path, encoding="utf-8") as handle:
                count, found = validate_lines(handle.read(), path)
            total += count
            problems.extend(found)
    else:
        total, problems = validate_lines(produce_corpus(), "<selfcheck>")
        if total < 10:
            problems.append(
                f"selfcheck produced only {total} lines; the flow "
                "logging instrumentation looks disconnected"
            )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(
            f"log schema check FAILED: {len(problems)} problem(s) "
            f"in {total} line(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"log schema v{obs_log.LOG_SCHEMA_VERSION} ok: "
        f"{total} line(s) validated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
