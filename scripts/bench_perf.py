#!/usr/bin/env python
"""Tier-2 performance smoke check (CI gate).

Runs the SimAnneal scaling benchmark with a small budget, writes
``benchmarks/artifacts/BENCH_simanneal.json`` and exits non-zero when
the vectorized batch kernel fails to beat the legacy serial loop at
24 sites -- the canary for performance regressions in the annealer.
Also measures the observability layer's overhead on the ``par_check``
flow (``benchmarks/artifacts/BENCH_obs.json``) and fails when the
disabled-mode no-op path costs more than 2% of the flow, and the
design service's cache + warm-worker-pool load benchmarks
(``benchmarks/artifacts/BENCH_service.json``), failing when the warm
pool beats process-per-job by less than 3x on a 50-job burst, and the
learned-guidance flywheel (``benchmarks/artifacts/BENCH_learn.json``),
failing when the surrogate's held-out AUC drops below 0.85, ranked
screening beats the unguided scan by less than 1.5x, or a library
sweep with collection enabled changes any verdict.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py [--full]

``--full`` runs the complete budget of the pytest benchmarks (slower,
same artifact shapes).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.learn.perfbench import (  # noqa: E402
    AUC_FLOOR,
    SPEEDUP_FLOOR,
    run_learn_benchmark,
)
from repro.obs.perfbench import (  # noqa: E402
    DISABLED_OVERHEAD_LIMIT,
    run_learn_hook_overhead_benchmark,
    run_overhead_benchmark,
    run_worker_overhead_benchmark,
    write_benchmark_json as write_obs_json,
)
from repro.service.perfbench import (  # noqa: E402
    MEMO_SPEEDUP_LIMIT,
    POOL_SPEEDUP_LIMIT,
    run_service_cache_benchmark,
    run_service_load_benchmark,
    write_benchmark_json as write_service_json,
)
from repro.sidb.perfbench import (  # noqa: E402
    GATE_SIZE,
    QUICKEXACT_GATE_SIZE,
    run_quickexact_benchmark,
    run_scaling_benchmark,
    write_benchmark_json,
)
from repro.timing.perfbench import (  # noqa: E402
    STA_FLOW_FRACTION_LIMIT,
    run_quick_timing_benchmark,
    run_timing_benchmark,
    write_benchmark_json as write_timing_json,
)
from repro.sidb.simanneal import SimAnnealParameters  # noqa: E402

ARTIFACT = REPO / "benchmarks" / "artifacts" / "BENCH_simanneal.json"
OBS_ARTIFACT = REPO / "benchmarks" / "artifacts" / "BENCH_obs.json"
SERVICE_ARTIFACT = REPO / "benchmarks" / "artifacts" / "BENCH_service.json"
QUICKEXACT_ARTIFACT = (
    REPO / "benchmarks" / "artifacts" / "BENCH_quickexact.json"
)
TIMING_ARTIFACT = REPO / "benchmarks" / "artifacts" / "BENCH_timing.json"
LEARN_ARTIFACT = REPO / "benchmarks" / "artifacts" / "BENCH_learn.json"

#: Minimum QuickExact-over-ExGS speedup at the gate size.
QUICKEXACT_SPEEDUP_LIMIT = 10.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="full benchmark budget (200 sweeps, 3 repeats)",
    )
    arguments = parser.parse_args()

    if arguments.full:
        record = run_scaling_benchmark()
    else:
        record = run_scaling_benchmark(
            sizes=(12, GATE_SIZE),
            schedule=SimAnnealParameters(instances=16, sweeps=100, seed=7),
            repeats=2,
        )
    path = write_benchmark_json(record, ARTIFACT)

    failures = []
    for point in record["points"]:
        line = (
            f"  {point['num_sites']:>3} sites: "
            f"serial {point['serial_seconds']:.3f}s  "
            f"batch {point['batch_seconds']:.3f}s  "
            f"parallel {point['parallel_seconds']:.3f}s  "
            f"speedup {point['speedup_batch_over_serial']:.1f}x"
        )
        print(line)
        if not point["parallel_matches_batch"]:
            failures.append(
                f"parallel diverged from batch at {point['num_sites']} sites"
            )
        if (
            point["num_sites"] == GATE_SIZE
            and point["speedup_batch_over_serial"] < 1.0
        ):
            failures.append(
                f"batch kernel slower than the serial loop at {GATE_SIZE} "
                f"sites ({point['speedup_batch_over_serial']:.2f}x)"
            )
    print(f"  artifact: {path}")

    obs_record = run_overhead_benchmark()
    worker_record = run_worker_overhead_benchmark()
    learn_hook_record = run_learn_hook_overhead_benchmark()
    obs_record["workers2"] = worker_record
    obs_record["learn_hooks"] = learn_hook_record
    obs_path = write_obs_json(obs_record, OBS_ARTIFACT)
    print(
        f"  obs overhead on {obs_record['benchmark']}: "
        f"stub {obs_record['stub_seconds']:.3f}s  "
        f"disabled {obs_record['disabled_seconds']:.3f}s "
        f"({obs_record['disabled_overhead'] * 100:+.2f}%)  "
        f"enabled {obs_record['enabled_seconds']:.3f}s "
        f"({obs_record['enabled_overhead'] * 100:+.2f}%)"
    )
    print(
        f"  obs overhead on {worker_record['benchmark']}: "
        f"stub {worker_record['stub_seconds']:.3f}s  "
        f"disabled {worker_record['disabled_seconds']:.3f}s "
        f"({worker_record['disabled_overhead'] * 100:+.2f}%)"
    )
    print(
        f"  obs overhead on {learn_hook_record['benchmark']}: "
        f"stub {learn_hook_record['stub_seconds']:.3f}s  "
        f"disabled {learn_hook_record['disabled_seconds']:.3f}s "
        f"({learn_hook_record['disabled_overhead'] * 100:+.2f}%)"
    )
    print(f"  artifact: {obs_path}")
    if obs_record["disabled_overhead"] >= DISABLED_OVERHEAD_LIMIT:
        failures.append(
            f"disabled-mode observability overhead "
            f"{obs_record['disabled_overhead'] * 100:.2f}% exceeds "
            f"{DISABLED_OVERHEAD_LIMIT * 100:.0f}%"
        )
    if worker_record["disabled_overhead"] >= DISABLED_OVERHEAD_LIMIT:
        failures.append(
            f"disabled-mode observability overhead with workers=2 is "
            f"{worker_record['disabled_overhead'] * 100:.2f}% (limit "
            f"{DISABLED_OVERHEAD_LIMIT * 100:.0f}%)"
        )
    if learn_hook_record["disabled_overhead"] >= DISABLED_OVERHEAD_LIMIT:
        failures.append(
            f"disabled-mode learn-hook overhead "
            f"{learn_hook_record['disabled_overhead'] * 100:.2f}% exceeds "
            f"{DISABLED_OVERHEAD_LIMIT * 100:.0f}%"
        )

    if arguments.full:
        quickexact_record = run_quickexact_benchmark()
    else:
        quickexact_record = run_quickexact_benchmark(
            sizes=(12, 16, QUICKEXACT_GATE_SIZE, 24, 30), repeats=2
        )
    quickexact_path = write_benchmark_json(
        quickexact_record, QUICKEXACT_ARTIFACT
    )
    for point in quickexact_record["points"]:
        speedup = point.get("speedup_quickexact_over_exgs")
        print(
            f"  {point['num_sites']:>3} sites: "
            f"quickexact {point['quickexact_seconds']:.3f}s  "
            f"enumerated {point['enumerated_fraction']:.2%}"
            + (f"  vs exgs {speedup:.1f}x" if speedup is not None else "")
        )
        if point.get("results_identical") is False:
            failures.append(
                f"QuickExact diverged from ExGS at "
                f"{point['num_sites']} sites"
            )
        if (
            point["num_sites"] == QUICKEXACT_GATE_SIZE
            and speedup is not None
            and speedup < QUICKEXACT_SPEEDUP_LIMIT
        ):
            failures.append(
                f"QuickExact only {speedup:.1f}x over ExGS at "
                f"{QUICKEXACT_GATE_SIZE} sites "
                f"(limit {QUICKEXACT_SPEEDUP_LIMIT:.0f}x)"
            )
    print(f"  artifact: {quickexact_path}")

    service_record = run_service_cache_benchmark()
    load_record = run_service_load_benchmark()
    service_record["load"] = load_record
    service_path = write_service_json(service_record, SERVICE_ARTIFACT)
    print(
        f"  service cache on {service_record['benchmark']}: "
        f"cold {service_record['cold_seconds']:.3f}s  "
        f"warm-memo {service_record['warm_memo_seconds'] * 1000:.3f}ms "
        f"({service_record['memo_speedup']:.0f}x)  "
        f"warm-disk {service_record['warm_disk_seconds'] * 1000:.3f}ms "
        f"({service_record['disk_speedup']:.0f}x)  "
        f"{service_record['warm_throughput_per_second']:.0f} warm req/s"
    )
    print(
        f"  service pool on {load_record['benchmark']} "
        f"({load_record['burst_jobs']} jobs, "
        f"{load_record['workers']} workers): "
        f"warm {load_record['warm_wall_seconds']:.2f}s "
        f"({load_record['warm_jobs_per_second']:.0f} jobs/s)  "
        f"process-per-job {load_record['cold_wall_seconds']:.2f}s "
        f"({load_record['cold_jobs_per_second']:.1f} jobs/s)  "
        f"speedup {load_record['pool_speedup']:.1f}x"
    )
    for level in load_record["saturation"]:
        print(
            f"    {level['clients']:>3} clients: "
            f"p50 {level['p50_ms']:.1f}ms  p99 {level['p99_ms']:.1f}ms  "
            f"{level['throughput_per_second']:.0f} req/s"
        )
    print(f"  artifact: {service_path}")
    if not service_record["sqd_identical"]:
        failures.append("service cache returned different .sqd bytes")
    if service_record["memo_speedup"] < MEMO_SPEEDUP_LIMIT:
        failures.append(
            f"service warm memo hit only "
            f"{service_record['memo_speedup']:.0f}x faster than cold "
            f"(limit {MEMO_SPEEDUP_LIMIT:.0f}x)"
        )
    if load_record["pool_speedup"] < POOL_SPEEDUP_LIMIT:
        failures.append(
            f"warm pool only {load_record['pool_speedup']:.1f}x faster "
            f"than process-per-job on the {load_record['burst_jobs']}-job "
            f"burst (limit {POOL_SPEEDUP_LIMIT:.0f}x)"
        )
    if load_record["warm_completed"] < load_record["burst_jobs"]:
        failures.append(
            f"warm pool completed only {load_record['warm_completed']}/"
            f"{load_record['burst_jobs']} burst jobs"
        )

    if arguments.full:
        timing_record = run_timing_benchmark()
    else:
        timing_record = run_quick_timing_benchmark()
    timing_path = write_timing_json(timing_record, TIMING_ARTIFACT)
    analyzed = [r for r in timing_record["rows"] if "error" not in r]
    print(
        f"  timing STA on {len(analyzed)} designs x "
        f"{len(timing_record['schemes'])} schemes: "
        f"{timing_record['total_sta_seconds'] * 1000:.1f}ms total "
        f"({timing_record['sta_flow_fraction']:.2%} of flow time)"
    )
    print(f"  artifact: {timing_path}")
    if timing_record["sta_flow_fraction"] >= STA_FLOW_FRACTION_LIMIT:
        failures.append(
            f"STA cost {timing_record['sta_flow_fraction']:.1%} of flow "
            f"time (limit {STA_FLOW_FRACTION_LIMIT:.0%})"
        )
    for row in analyzed:
        native = row["schemes"].get("columnar-rows", {})
        if native.get("wns_phases") != 0:
            failures.append(
                f"{row['name']}: native columnar-rows slack "
                f"{native.get('wns_phases')} (expected fully pipelined, 0)"
            )

    learn_record = run_learn_benchmark()
    learn_path = write_obs_json(learn_record, LEARN_ARTIFACT)
    print(
        f"  learn on {learn_record['benchmark']}: "
        f"AUC {learn_record['auc']:.4f}  "
        f"unguided {learn_record['unguided_seconds']:.2f}s  "
        f"guided {learn_record['guided_seconds']:.2f}s "
        f"({learn_record['guided_evaluations']} evals)  "
        f"speedup {learn_record['speedup']:.1f}x  "
        f"verdicts equal {learn_record['verdict_equality']}"
    )
    print(f"  artifact: {learn_path}")
    if learn_record["auc"] < AUC_FLOOR:
        failures.append(
            f"surrogate held-out AUC {learn_record['auc']:.4f} below "
            f"{AUC_FLOOR}"
        )
    if learn_record["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"guided screening only {learn_record['speedup']:.2f}x over "
            f"the unguided scan (limit {SPEEDUP_FLOOR}x)"
        )
    if not learn_record["verdict_equality"]:
        failures.append(
            "library sweep verdicts changed with learn collection enabled"
        )

    # Trend tracking: log this run and gate against the rolling best.
    sys.path.insert(0, str(REPO / "scripts"))
    import bench_trend  # noqa: E402

    trend_record = bench_trend.append_history()
    print(
        f"  trend: appended {sorted(trend_record['metrics'])} to "
        f"{bench_trend.HISTORY.relative_to(REPO)}"
    )
    trend_warnings: list[str] = []
    failures.extend(bench_trend.check_history(warnings=trend_warnings))
    for warning in trend_warnings:
        print(f"WARN (unconfirmed, not gating): {warning}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
