#!/bin/sh
# Tier-1 continuous integration: API surface guard + full test suite.
#
#     sh scripts/ci.sh
set -e
cd "$(dirname "$0")/.."

echo "== repro.api surface =="
python scripts/check_api_surface.py --strict

echo "== benchmark trend =="
PYTHONPATH=src python scripts/bench_trend.py --check

echo "== structured log schema =="
PYTHONPATH=src python scripts/check_log_schema.py

echo "== learn dataset/model schema =="
PYTHONPATH=src python scripts/check_learn_schema.py

echo "== design service smoke =="
PYTHONPATH=src python scripts/service_smoke.py

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q
