"""CI gate for the learned-guidance dataset and model schemas.

Guards the serialization contracts of :mod:`repro.learn` (dataset
schema :data:`~repro.learn.dataset.DATASET_SCHEMA_VERSION`, model
schema :data:`~repro.learn.model.MODEL_SCHEMA_VERSION`, featurizer
:data:`~repro.learn.features.FEATURE_VERSION`):

* the committed golden shard (``tests/golden/learn_shard.jsonl``) and
  golden model (``tests/golden/learn_model.json``) still parse under
  the current schema validators and re-serialize **byte-identically**
  -- any drift in the record layout, the feature names, or a version
  constant without regenerating the goldens fails the gate;
* a fresh self-check corpus round-trips: featurize a real candidate
  (twice -- byte-identical), write/parse a JSONL shard and an ``.npz``
  shard, train/save/load a tiny model, and confirm the validators
  *reject* wrong schema versions and wrong feature names instead of
  silently misparsing.

Passing file paths validates those shard (``.jsonl``/``.npz``) or
model (``.json``) files instead, e.g. a collected production shard::

    PYTHONPATH=src python scripts/check_learn_schema.py
    PYTHONPATH=src python scripts/check_learn_schema.py shards/shard-ab12.jsonl
    PYTHONPATH=src python scripts/check_learn_schema.py --regenerate

``--regenerate`` rewrites the golden files from the current schema
(use after an intentional, version-bumped schema change).
"""

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
GOLDEN_SHARD = REPO / "tests" / "golden" / "learn_shard.jsonl"
GOLDEN_MODEL = REPO / "tests" / "golden" / "learn_model.json"

from repro.coords.lattice import LatticeSite  # noqa: E402
from repro.learn.dataset import (  # noqa: E402
    DATASET_SCHEMA_VERSION,
    Example,
    dumps_shard,
    load_examples,
    parse_shard,
    write_shard_npz,
)
from repro.learn.features import (  # noqa: E402
    FEATURE_NAMES,
    FEATURE_VERSION,
    CandidateGeometry,
    featurize_candidate,
)
from repro.learn.model import (  # noqa: E402
    MODEL_SCHEMA_VERSION,
    SurrogateModel,
    train_surrogate,
)
from repro.networks.truth_table import TruthTable  # noqa: E402
from repro.sidb.bdl import BdlPair  # noqa: E402


def _reference_candidates() -> list[CandidateGeometry]:
    """Small fixed wire-like candidates (no physics; featurize only)."""

    def S(n: int, row: int) -> LatticeSite:
        return LatticeSite.from_row(n, row)

    body = tuple(S(0, r) for r in (0, 2, 6, 8, 12, 14))
    stimuli = (((S(0, -6),), (S(0, -2),)),)
    pair = (BdlPair(S(0, 12), S(0, 14)),)
    tables = (TruthTable(1, 0b10),)
    plain = CandidateGeometry(
        sites=body, canvas=(), input_stimuli=stimuli,
        output_pairs=pair, outputs=tables, name="golden-wire",
    )
    decorated = CandidateGeometry(
        sites=body + (S(2, 6), S(2, 8)), canvas=(S(2, 6), S(2, 8)),
        input_stimuli=stimuli, output_pairs=pair, outputs=tables,
        name="golden-wire-decorated",
    )
    return [plain, decorated]


def _reference_examples() -> list[Example]:
    examples = []
    for index, candidate in enumerate(_reference_candidates()):
        vector = featurize_candidate(candidate)
        examples.append(
            Example(
                features=tuple(float(x) for x in vector),
                correct=index, total=2, kind="canvas",
                name=candidate.name,
            )
        )
    return examples


def _reference_model() -> SurrogateModel:
    """A tiny deterministic model trained on a fixed synthetic matrix."""
    rng = np.random.default_rng(7)
    features = rng.standard_normal((48, len(FEATURE_NAMES)))
    labels = (features[:, 0] + 0.5 * features[:, 1] > 0).astype(float)
    return train_surrogate(features, labels, seed=7, stump_rounds=4)


def regenerate() -> None:
    GOLDEN_SHARD.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_SHARD.write_text(
        dumps_shard(_reference_examples()), encoding="utf-8"
    )
    _reference_model().save(GOLDEN_MODEL)
    print(f"wrote {GOLDEN_SHARD.relative_to(REPO)}")
    print(f"wrote {GOLDEN_MODEL.relative_to(REPO)}")


def check_goldens() -> list[str]:
    """Golden round-trip: parse under current validators, re-serialize
    byte-identically."""
    problems = []
    if not GOLDEN_SHARD.exists():
        return [f"missing golden shard {GOLDEN_SHARD}; run --regenerate"]
    if not GOLDEN_MODEL.exists():
        return [f"missing golden model {GOLDEN_MODEL}; run --regenerate"]
    shard_text = GOLDEN_SHARD.read_text(encoding="utf-8")
    try:
        examples = parse_shard(shard_text, str(GOLDEN_SHARD))
    except ValueError as error:
        return [f"golden shard rejected: {error}"]
    if dumps_shard(examples) != shard_text:
        problems.append(
            "golden shard does not re-serialize byte-identically; the "
            "record layout drifted -- bump DATASET_SCHEMA_VERSION and "
            "--regenerate"
        )
    fresh = [example.features for example in _reference_examples()]
    if [example.features for example in examples] != fresh:
        problems.append(
            "featurizer output for the golden candidates changed; bump "
            "FEATURE_VERSION and --regenerate"
        )
    model_text = GOLDEN_MODEL.read_text(encoding="utf-8")
    try:
        model = SurrogateModel.from_dict(json.loads(model_text))
    except ValueError as error:
        problems.append(f"golden model rejected: {error}")
        return problems
    reserialized = (
        json.dumps(model.to_dict(), indent=1, sort_keys=True) + "\n"
    )
    if reserialized != model_text:
        problems.append(
            "golden model does not re-serialize byte-identically; the "
            "document layout drifted -- bump MODEL_SCHEMA_VERSION and "
            "--regenerate"
        )
    return problems


def self_check() -> list[str]:
    """Fresh-corpus round-trips and wrong-version rejection."""
    problems = []
    candidates = _reference_candidates()
    for candidate in candidates:
        first = featurize_candidate(candidate).tobytes()
        second = featurize_candidate(candidate).tobytes()
        if first != second:
            problems.append(
                f"featurization of {candidate.name!r} is not "
                "byte-deterministic"
            )
    examples = _reference_examples()
    parsed = parse_shard(dumps_shard(examples))
    if parsed != examples:
        problems.append("JSONL shard round-trip lost examples")
    with tempfile.TemporaryDirectory() as tmp:
        npz = write_shard_npz(Path(tmp) / "shard.npz", examples)
        loaded = load_examples(npz)
        if [tuple(row) for row in loaded.features] != [
            example.features for example in examples
        ]:
            problems.append(".npz shard round-trip lost features")
        model = _reference_model()
        saved = model.save(Path(tmp) / "model.json")
        reloaded = SurrogateModel.load(saved)
        if reloaded.to_dict() != model.to_dict():
            problems.append("model save/load round-trip drifted")
        probe = np.array([examples[0].features, examples[1].features])
        probabilities = reloaded.predict_proba(probe)
        if not np.all((probabilities >= 0) & (probabilities <= 1)):
            problems.append("model probabilities left [0, 1]")

    # Wrong versions and wrong feature names must be *rejected*.
    bad_header = json.loads(dumps_shard([]).splitlines()[0])
    bad_header["schema_version"] = DATASET_SCHEMA_VERSION + 1
    try:
        parse_shard(
            json.dumps(bad_header, sort_keys=True) + "\n", "<bad>"
        )
        problems.append("shard with wrong schema_version was accepted")
    except ValueError:
        pass
    bad_model = _reference_model().to_dict()
    bad_model["feature_version"] = FEATURE_VERSION + 1
    try:
        SurrogateModel.from_dict(bad_model)
        problems.append("model with wrong feature_version was accepted")
    except ValueError:
        pass
    worse_model = _reference_model().to_dict()
    worse_model["feature_names"] = list(
        reversed(worse_model["feature_names"])
    )
    try:
        SurrogateModel.from_dict(worse_model)
        problems.append("model with reordered feature names was accepted")
    except ValueError:
        pass
    return problems


def check_files(paths: list[str]) -> list[str]:
    problems = []
    for raw in paths:
        path = Path(raw)
        try:
            if path.suffix == ".json":
                SurrogateModel.load(path)
                print(f"{path}: model ok")
            else:
                dataset = load_examples(path)
                print(f"{path}: shard ok ({len(dataset)} example(s))")
        except (ValueError, OSError, KeyError) as error:
            problems.append(f"{path}: {error}")
    return problems


def main(argv: list[str]) -> int:
    if "--regenerate" in argv:
        regenerate()
        argv = [a for a in argv if a != "--regenerate"]
    if argv:
        problems = check_files(argv)
    else:
        problems = check_goldens() + self_check()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(
            f"learn schema check FAILED: {len(problems)} problem(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"learn schemas ok: dataset v{DATASET_SCHEMA_VERSION}, "
        f"model v{MODEL_SCHEMA_VERSION}, features v{FEATURE_VERSION} "
        f"({len(FEATURE_NAMES)} features), "
        f"goldens round-trip byte-identically"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
